#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "mr/job.hpp"

namespace textmr::mr {

/// Shared task-execution layer used by both engines: LocalEngine drives
/// these helpers from worker threads, ClusterEngine from forked worker
/// processes. Keeping spec validation, task-config construction, attempt
/// cleanup and result aggregation here guarantees that a task runs
/// identically regardless of which engine scheduled it — the property the
/// cross-engine differential tests assert.

/// Validates a JobSpec; throws ConfigError on contract violations.
void validate_job(const JobSpec& spec);

/// "part-r-00007"-style final output name for a partition.
std::string part_name(std::uint32_t partition);

/// Final output path of one reduce partition.
std::filesystem::path reduce_output_path(const JobSpec& spec,
                                         std::uint32_t partition);

/// Path a physical reduce task commits to: the canonical part file in
/// hash mode, the scratch segment file when a non-empty skew plan is in
/// force (the finalize merge later restores the part files). Shared by
/// config construction and failed-attempt cleanup so they can never
/// disagree.
std::filesystem::path reduce_task_output_path(const JobSpec& spec,
                                              const SkewPlan* plan,
                                              std::uint32_t partition);

/// Map-side memory split between the spill buffer and the frequent-key
/// table (total fixed, paper §V-B2).
struct MemorySplit {
  std::size_t spill_buffer_bytes = 0;
  std::uint64_t freq_table_budget_bytes = 0;
};
MemorySplit split_memory(const JobSpec& spec);

/// Builds the config for one map-task attempt. `node_cache` is the
/// executing node's shared frequent-key cache (may be null);
/// `trace` is the executing process's collector (may be null);
/// `skew_plan` routes heavy keys when non-null and non-empty (the map
/// task then spills plan->num_physical() partitions).
MapTaskConfig make_map_task_config(const JobSpec& spec, const MemorySplit& mem,
                                   std::uint32_t task, std::uint32_t attempt,
                                   freqbuf::NodeKeyCache* node_cache,
                                   obs::TraceCollector* trace,
                                   const SkewPlan* skew_plan = nullptr);

/// Builds the config for one reduce-task attempt over the given map
/// outputs (must be ordered by map-task id for deterministic merges).
/// With a non-empty `skew_plan` the task writes a segment file instead
/// of a part file; split-share partitions run the merge combiner and
/// emit partials (DESIGN.md §12).
ReduceTaskConfig make_reduce_task_config(
    const JobSpec& spec, std::uint32_t partition, std::uint32_t attempt,
    std::vector<io::SpillRunInfo> map_outputs, obs::TraceCollector* trace,
    const SkewPlan* skew_plan = nullptr, ShuffleFetcher fetch = {});

/// Removes the scratch files of one dead map attempt (best-effort).
void cleanup_map_attempt(const JobSpec& spec, std::uint32_t task,
                         std::uint32_t attempt);

/// Removes the temp file of one dead reduce attempt (best-effort).
void cleanup_reduce_attempt(const std::filesystem::path& output_path,
                            std::uint32_t attempt);

/// Folds one finished map task's metrics/counters/summary into the job
/// result. Does NOT append to result.outputs or collect the output run —
/// shuffling the run to reducers is the engine's business.
void fold_map_result(const MapTaskResult& task_result, JobResult& result);

/// Folds one finished reduce task into the job result, appending a
/// ReduceTaskSummary (partition = fold order, so call in partition
/// order). `include_output` is false in skew mode, where the task wrote
/// a scratch segment and finalize_skew_outputs owns result.outputs.
void fold_reduce_result(const ReduceTaskResult& reduce_result,
                        JobResult& result, bool include_output = true);

/// Records one "partition_bytes" trace instant per physical reduce task
/// (from result.reduce_tasks) and fills JobMetrics::partition_bytes_max /
/// partition_bytes_median — the skew-ratio inputs. Shared by both
/// engines; call after every reduce result is folded.
void note_partition_bytes(JobResult& result, obs::TraceBuffer* driver_trace);

/// Message of the in-flight exception; call only inside a catch block.
std::string current_error_message();

/// Whether the in-flight exception is worth a re-execution. Transient
/// failures (I/O, user-code throws) are; InternalError (invariant bug)
/// and ConfigError (bad spec) are deterministic and fail the job
/// immediately with their original type. Call only inside a catch block.
bool is_retryable_error();

/// Deletes everything in `dir` whose filename starts with `prefix` — the
/// scratch files of one dead task attempt. Best-effort: cleanup must
/// never mask the task's own error.
void remove_attempt_files(const std::filesystem::path& dir,
                          const std::string& prefix);

/// Exponential backoff between attempts of one task.
void backoff_sleep(std::uint32_t base_ms, std::uint32_t failed_attempt);

/// Shared state of the retry scheduler: attempt accounting plus the
/// first permanent task failure (which dooms the job).
struct RetryState {
  // Both set once by the engine before any worker thread starts, then
  // read-only; publication happens-before via the thread launches.
  std::uint32_t max_attempts = 1;    // check:allow(lock-coverage): see above
  std::uint32_t backoff_base_ms = 0;  // check:allow(lock-coverage): see above
  std::atomic<std::uint64_t> task_attempts{0};
  std::atomic<std::uint64_t> tasks_retried{0};
  std::atomic<bool> job_failed{false};
  textmr::Mutex error_mu{textmr::LockRank::kEngine, "mr.engine.retry_error"};
  std::exception_ptr job_error TEXTMR_GUARDED_BY(error_mu);

  void record_permanent_failure(const std::string& what);
  void record_permanent_error(std::exception_ptr error);

  // Annotation-surfaced fix (PR 3): this used to read job_error unlocked,
  // racing a straggler worker's record_permanent_error() — benign-looking
  // because the engine joins first, but the phase barrier only covers the
  // phase's own workers, and the unlocked read was unprovable anyway.
  void rethrow_if_failed();
};

/// Logs + traces one retry (out-of-line so the template stays light).
void note_retry(const char* kind, std::uint32_t id, std::uint32_t attempt,
                const std::string& cause, obs::TraceCollector* collector,
                obs::TraceBuffer** worker_trace, std::uint32_t pid,
                std::uint32_t tid, const std::string& worker_name);

/// Runs one task with bounded retries. `run_attempt(attempt)` executes
/// the task; `cleanup_attempt(attempt)` removes a dead attempt's files.
/// Returns false when the task failed permanently (the job is doomed and
/// the caller's worker should stop claiming tasks).
template <typename RunAttempt, typename CleanupAttempt>
bool run_with_retries(RetryState& retry, const char* kind, std::uint32_t id,
                      obs::TraceCollector* collector,
                      obs::TraceBuffer** worker_trace, std::uint32_t pid,
                      std::uint32_t tid, const std::string& worker_name,
                      RunAttempt&& run_attempt,
                      CleanupAttempt&& cleanup_attempt) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    retry.task_attempts.fetch_add(1, std::memory_order_relaxed);
    try {
      run_attempt(attempt);
      return true;
    } catch (...) {
      const std::string cause = current_error_message();
      cleanup_attempt(attempt);
      if (!is_retryable_error()) {
        // Invariant/contract violations are deterministic: re-running
        // cannot succeed, so propagate the original typed error at once.
        retry.record_permanent_error(std::current_exception());
        return false;
      }
      if (attempt + 1 >= retry.max_attempts) {
        retry.record_permanent_failure(
            std::string(kind) + " task " + std::to_string(id) +
            " failed after " + std::to_string(attempt + 1) +
            (attempt == 0 ? " attempt: " : " attempts: ") + cause);
        return false;
      }
      if (attempt == 0) {
        retry.tasks_retried.fetch_add(1, std::memory_order_relaxed);
      }
      note_retry(kind, id, attempt, cause, collector, worker_trace, pid, tid,
                 worker_name);
      backoff_sleep(retry.backoff_base_ms, attempt);
    }
  }
}

}  // namespace textmr::mr
