#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.hpp"
#include "io/line_reader.hpp"
#include "mr/partitioner.hpp"
#include "mr/types.hpp"

namespace textmr::obs {
class TraceBuffer;
}  // namespace textmr::obs

namespace textmr::mr {

struct JobSpec;
struct JobResult;

/// Skew-aware partitioning knobs (JobSpec::skew, DESIGN.md §12).
///
/// The thresholds are expressed as multiples of the *average* partition
/// share (1 / num_reducers), so the same configuration scales with the
/// reducer count: a key is placed on a dedicated reducer once it alone
/// accounts for `place_threshold` average-partitions worth of records,
/// and split across several reducers once it exceeds `split_threshold`
/// average partitions (splitting additionally requires a combiner — the
/// shares emit combiner partials that the finalize pass reduces).
struct SkewConfig {
  bool enabled = false;

  /// Space-Saving sketch capacity for the driver-side sampling pre-pass;
  /// also the maximum number of heavy-key candidates considered.
  std::size_t top_k = 64;

  /// Input bytes the sampling pre-pass reads (spread over the first
  /// lines of every split, in split order — deterministic).
  std::uint64_t sample_bytes = 4u << 20;

  /// Place a key on a dedicated reducer when its estimated share of all
  /// map output records is >= place_threshold / num_reducers.
  double place_threshold = 0.5;

  /// Split a key across reducers when its share is
  /// >= split_threshold / num_reducers (demoted to placement when the
  /// job has no combiner to merge the shares).
  double split_threshold = 1.1;

  /// Upper bound on the shares one split key fans out to.
  std::uint32_t max_split_shares = 4;

  /// Cap on dedicated (extra) physical partitions; 0 = num_reducers.
  std::uint32_t max_extra_partitions = 0;

  /// Combiner used by split shares and the finalize merge when the job
  /// itself runs without a map-side combiner (JobSpec::combiner empty).
  /// Lets a job keep full map output volume (no map-side combining) and
  /// still split heavy keys — the skew battery's configuration. Must
  /// satisfy the usual combiner contract for the job's reducer.
  ReducerFactory merge_combiner;
};

/// Deterministic heavy-key routing plan, computed once on the driver from
/// the Space-Saving sample and shared verbatim by every map task (the
/// cluster engine broadcasts it as a kSkewPlan frame). Partitions
/// 0..num_canonical-1 keep their hash-partitioner meaning; dedicated
/// partitions live above that. A split entry owns a contiguous range of
/// one partition per share; placed entries are bin-packed, so several
/// may share one dedicated partition (their reduce groups coexist in one
/// segment file and the finalize merge picks each key's group out by
/// key). A partition hosting a split share hosts nothing else.
struct SkewPlan {
  enum class Mode : std::uint8_t { kPlace = 0, kSplit = 1 };

  struct Entry {
    std::string key;
    Mode mode = Mode::kPlace;
    std::uint32_t first_physical = 0;  // first dedicated partition id
    std::uint32_t num_shares = 1;      // 1 for kPlace, >= 2 for kSplit
  };

  std::uint32_t num_canonical = 0;
  /// Sorted by key (bytewise) — the partitioner binary-searches it and
  /// the finalize merge relies on the order.
  std::vector<Entry> entries;

  bool empty() const { return entries.empty(); }
  std::uint32_t num_physical() const;
  const Entry* find(std::string_view key) const TEXTMR_LIFETIME_BOUND;
  /// An entry hosted on a dedicated partition id (the lowest-key one when
  /// a shared bin packs several placed keys — co-hosted entries always
  /// agree on mode), or null for canonical partitions
  /// (id < num_canonical).
  const Entry* entry_for_partition(std::uint32_t partition) const;
};

/// Builds the plan by sampling the job's own map output keys: reads up to
/// `spec.skew.sample_bytes` of input (spread across splits, in split
/// order), feeds the lines through a fresh mapper instance into a
/// Space-Saving sketch, then selects heavy keys against the thresholds.
/// Returns an empty plan when skew partitioning is disabled, nothing is
/// heavy, or num_reducers < 2. Deterministic: same spec => same plan.
SkewPlan build_skew_plan(const JobSpec& spec);

/// Drop-in replacement for HashPartitioner in the map emit path. With a
/// null (or empty) plan it is exactly the hash partitioner — one branch
/// per record. Heavy keys route to their dedicated partitions; split
/// keys round-robin across their shares, with the starting share seeded
/// by the map task id so shares fill evenly across tasks.
class SkewAwarePartitioner {
 public:
  SkewAwarePartitioner(std::uint32_t num_canonical, const SkewPlan* plan,
                       std::uint32_t task_id);

  std::uint32_t operator()(std::string_view key);

  std::uint32_t num_partitions() const {
    return plan_ != nullptr ? plan_->num_physical() : hash_.num_partitions();
  }

 private:
  HashPartitioner hash_;
  const SkewPlan* plan_;              // null = pure hash mode
  std::vector<std::uint32_t> next_share_;  // per entry, round-robin cursor
};

/// In skew mode every reduce task writes a *segment* file instead of a
/// part file: entries keyed by the reduce group key, in group order.
///   entry: [u8 kind][varint klen][key][varint blob_len][blob]
/// kOutput blobs hold the final "key\tvalue\n" text the group produced;
/// kPartial blobs hold combiner partial values (length-prefixed) from one
/// share of a split key. The finalize pass merges segments back into the
/// canonical part files — the layout invariant that keeps skew runs
/// byte-identical to hash-partitioner runs.
enum class SegmentKind : std::uint8_t { kOutput = 0, kPartial = 1 };

class SegmentWriter {
 public:
  explicit SegmentWriter(const std::string& path);
  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  void add(SegmentKind kind, std::string_view key, std::string_view blob);

  /// Flushes and closes; returns total bytes. Must be called exactly once.
  std::uint64_t finish();

 private:
  std::string path_;
  std::FILE* file_;
  std::string buffer_;
  std::uint64_t bytes_ = 0;
  bool finished_ = false;
};

struct SegmentEntry {
  SegmentKind kind = SegmentKind::kOutput;
  std::string_view key;
  std::string_view blob;
};

/// Streaming reader over one segment file (whole file buffered; views are
/// stable for the reader's lifetime). Throws FormatError on malformed
/// entries.
class SegmentReader {
 public:
  explicit SegmentReader(const std::string& path);

  std::optional<SegmentEntry> next() TEXTMR_LIFETIME_BOUND;

 private:
  std::string data_;
  std::size_t pos_ = 0;
};

/// Scratch path one physical reduce task's segment file commits to in
/// skew mode (tmp + rename, like part files).
std::filesystem::path skew_segment_path(const JobSpec& spec,
                                        std::uint32_t partition);

/// Appends one combiner partial value to a kPartial blob.
void append_partial_value(std::string& blob, std::string_view value);

/// Decodes a kPartial blob back into its values (views into `blob`).
std::vector<std::string_view> decode_partial_values(
    std::string_view blob TEXTMR_LIFETIME_BOUND);

/// What the finalize merge did (folded into trace args / logs).
struct SkewFinalizeStats {
  std::uint64_t groups = 0;       // key groups written to part files
  std::uint64_t heavy_keys = 0;   // plan entries that produced output
  std::uint64_t split_keys = 0;   // entries reduced from share partials
  std::uint64_t bytes_written = 0;
};

/// Merges the per-task segment files back into canonical part files
/// (output_dir/part-r-*), restoring the exact byte layout a hash
/// partitioner run produces: canonical groups stay in group order and
/// each heavy key slots in at its sorted position; split keys are
/// reduced from their shares' combiner partials with the job's real
/// reducer. Writes via tmp + rename. Appends the part paths to
/// `result.outputs` and removes the segments unless keep_intermediates.
SkewFinalizeStats finalize_skew_outputs(const JobSpec& spec,
                                        const SkewPlan& plan,
                                        JobResult& result,
                                        obs::TraceBuffer* trace);

/// Bin-packing of different-sized input files onto map tasks (Afrati et
/// al., PAPERS.md): splits each file into chunks sized so every task gets
/// roughly total_bytes / num_tasks input, assigning more chunks to bigger
/// files (longest-processing-time order). Produces about `num_tasks`
/// splits — never fewer than one per file, so a job with more files than
/// tasks degrades to one split per file; small files are never merged (a
/// task reads one contiguous range of one file).
std::vector<io::InputSplit> pack_input_files(
    const std::vector<std::string>& paths, std::uint32_t num_tasks);

}  // namespace textmr::mr
