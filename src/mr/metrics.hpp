#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"
#include "obs/histogram.hpp"

namespace textmr::mr {

/// Fine-grained operation taxonomy, mirroring the paper's Table I
/// instrumentation of Hadoop. Everything except kMapUser / kCombine /
/// kReduceUser is pure abstraction cost.
enum class Op : std::size_t {
  kMapRead = 0,     // reading + splitting input records
  kMapUser,         // user map() code (excluding time inside emit())
  kEmit,            // serializing records into the spill buffer
  kProfile,         // frequency-buffering profiling overhead (sketch updates)
  kFreqTable,       // frequency-buffering hash-table path (hits + flushes)
  kSort,            // sorting spill regions
  kCombine,         // user combine() code (spill and freq-table paths)
  kSpillWrite,      // writing sorted spill runs to disk
  kMerge,           // map-side k-way merge (read + heap + write)
  kMergeCombine,    // user combine() code invoked from the merge path
  kShuffle,         // reduce-side fetch of map output partitions
  kReduceMerge,     // reduce-side merge/group of fetched runs
  kReduceUser,      // user reduce() code
  kOutputWrite,     // writing final output
  kMapIdle,         // map thread blocked on a full spill buffer
  kSupportIdle,     // support thread blocked waiting for a sealed spill
  kNumOps,
};

constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kNumOps);

const char* op_name(Op op);

/// True for operations that are user code rather than framework overhead.
constexpr bool is_user_code(Op op) {
  return op == Op::kMapUser || op == Op::kCombine ||
         op == Op::kMergeCombine || op == Op::kReduceUser;
}

/// Per-task (or per-thread) metrics. Owned by exactly one thread while a
/// task runs; merged without locks afterwards.
struct TaskMetrics {
  std::array<std::uint64_t, kNumOps> ns{};

  // Volume counters.
  std::uint64_t input_records = 0;
  std::uint64_t input_bytes = 0;
  std::uint64_t map_output_records = 0;   // records emitted by map()
  std::uint64_t map_output_bytes = 0;     // serialized bytes emitted by map()
  std::uint64_t freq_hits = 0;            // records absorbed by the freq table
  std::uint64_t freq_flushes = 0;         // records re-emitted by table flushes
  std::uint64_t hash_combine_hits = 0;     // probe hits in the hash-combine path
  std::uint64_t hash_combine_flushes = 0;  // watermark flushes of hash shards
  std::uint64_t hash_combine_demotions = 0;  // shards demoted to sort-spill
  std::uint64_t spill_input_records = 0;  // records entering the spill buffer
  std::uint64_t spill_input_bytes = 0;    // bytes entering the spill buffer
  std::uint64_t spilled_records = 0;      // records written to spill runs
  std::uint64_t spilled_bytes = 0;
  std::uint64_t spill_count = 0;
  std::uint64_t merged_records = 0;       // records in the final map output
  std::uint64_t merged_bytes = 0;
  std::uint64_t shuffled_bytes = 0;       // bytes fetched by reduce tasks
  std::uint64_t shuffled_wire_bytes = 0;  // subset served over the network
  std::uint64_t reduce_input_records = 0;
  std::uint64_t reduce_groups = 0;
  std::uint64_t output_records = 0;
  std::uint64_t output_bytes = 0;

  std::uint64_t& op_ns(Op op) { return ns[static_cast<std::size_t>(op)]; }
  std::uint64_t op_ns(Op op) const { return ns[static_cast<std::size_t>(op)]; }

  TaskMetrics& operator+=(const TaskMetrics& other);

  /// Sum of all operation times — the paper's "serialized view" of work.
  std::uint64_t total_ns(bool include_idle = false) const;
  std::uint64_t user_ns() const;
  std::uint64_t abstraction_ns(bool include_idle = false) const;
};

/// Per-worker telemetry aggregated by the cluster coordinator from
/// heartbeat stats snapshots (ISSUE 6). Counters are cumulative over the
/// worker's lifetime; `telemetry_complete` is false when the worker died
/// (or was killed) before shipping its final trace chunk, so the numbers
/// are a last-heartbeat lower bound rather than a final accounting.
struct WorkerTelemetry {
  std::uint32_t worker_id = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  std::uint64_t spills = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t task_failures = 0;
  std::uint64_t trace_dropped = 0;
  obs::LatencyHistogram task_latency_ns;
  bool telemetry_complete = true;
};

/// Whole-job metrics: the serialized work view plus phase wall clocks.
struct JobMetrics {
  TaskMetrics work;          // summed over every thread of every task
  TaskMetrics map_work;      // map threads only (produce path + merge)
  TaskMetrics support_work;  // support threads only (sort/combine/spill)
  TaskMetrics reduce_work;   // reduce tasks only
  std::uint64_t map_tasks = 0;
  std::uint64_t reduce_tasks = 0;
  /// Task-recovery accounting: total task attempts (>= map_tasks +
  /// reduce_tasks) and how many tasks needed more than one attempt.
  std::uint64_t task_attempts = 0;
  std::uint64_t tasks_retried = 0;
  std::uint64_t map_phase_wall_ns = 0;
  std::uint64_t reduce_phase_wall_ns = 0;
  std::uint64_t job_wall_ns = 0;

  // Intra-map parallelism accounting (paper Table II / Fig. 9): summed
  // over map tasks; wall is the sum of per-task map-phase durations.
  std::uint64_t map_thread_wall_ns = 0;
  std::uint64_t map_thread_idle_ns = 0;
  std::uint64_t support_thread_wall_ns = 0;
  std::uint64_t support_thread_idle_ns = 0;

  double map_idle_fraction() const {
    return map_thread_wall_ns == 0
               ? 0.0
               : static_cast<double>(map_thread_idle_ns) /
                     static_cast<double>(map_thread_wall_ns);
  }
  double support_idle_fraction() const {
    return support_thread_wall_ns == 0
               ? 0.0
               : static_cast<double>(support_thread_idle_ns) /
                     static_cast<double>(support_thread_wall_ns);
  }

  // Reduce-side partition skew (DESIGN.md §12): shuffled bytes of the
  // heaviest physical reduce partition vs the (upper) median one. Filled
  // by note_partition_bytes in both engines; zero for jobs that never
  // reduced.
  std::uint64_t partition_bytes_max = 0;
  std::uint64_t partition_bytes_median = 0;

  /// Max/median shuffled-bytes ratio across reduce partitions — the skew
  /// battery's headline number. 1.0 = perfectly even; 0 when unknown.
  double partition_skew_ratio() const {
    if (partition_bytes_median == 0) return 0.0;
    return static_cast<double>(partition_bytes_max) /
           static_cast<double>(partition_bytes_median);
  }

  // Cluster telemetry (empty / zero for single-process engines unless
  // noted). trace_ring_dropped counts events lost to trace-ring overflow
  // across every process — the local engine reports it too.
  std::vector<WorkerTelemetry> workers;
  std::uint64_t trace_ring_dropped = 0;
  bool telemetry_incomplete = false;

  /// Input-records skew across workers: max/mean, 1.0 = perfectly even.
  /// Zero when there are no workers or no records at all.
  double worker_records_skew() const {
    if (workers.empty()) return 0.0;
    std::uint64_t total = 0;
    std::uint64_t max = 0;
    for (const auto& worker : workers) {
      total += worker.records;
      if (worker.records > max) max = worker.records;
    }
    if (total == 0) return 0.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(workers.size());
    return static_cast<double>(max) / mean;
  }
};

/// RAII timer attributing an interval to one operation of one TaskMetrics.
class ScopedTimer {
 public:
  ScopedTimer(TaskMetrics& metrics, Op op)
      : metrics_(metrics), op_(op), start_(monotonic_ns()) {}
  ~ScopedTimer() { metrics_.op_ns(op_) += monotonic_ns() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TaskMetrics& metrics_;
  Op op_;
  std::uint64_t start_;
};

}  // namespace textmr::mr
