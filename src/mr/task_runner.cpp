#include "mr/task_runner.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace textmr::mr {

void validate_job(const JobSpec& spec) {
  if (spec.inputs.empty()) throw ConfigError("job has no input splits");
  if (!spec.mapper) throw ConfigError("job has no mapper");
  if (!spec.reducer) throw ConfigError("job has no reducer");
  if (spec.num_reducers == 0) throw ConfigError("num_reducers must be >= 1");
  if (spec.map_parallelism == 0 || spec.reduce_parallelism == 0) {
    throw ConfigError("parallelism must be >= 1");
  }
  if (spec.support_threads == 0 || spec.support_threads > 64) {
    throw ConfigError("support_threads must be in [1, 64]");
  }
  if (spec.max_task_attempts == 0) {
    throw ConfigError("max_task_attempts must be >= 1");
  }
  if (spec.scratch_dir.empty()) throw ConfigError("scratch_dir is required");
  if (spec.output_dir.empty()) throw ConfigError("output_dir is required");
  if (spec.spill_threshold <= 0.0 || spec.spill_threshold >= 1.0) {
    throw ConfigError("spill_threshold must be in (0, 1)");
  }
  if (spec.hash_combine_shards == 0 || spec.hash_combine_shards > 64) {
    throw ConfigError("hash_combine_shards must be in [1, 64]");
  }
  if (spec.combine_mode == CombineMode::kHash &&
      spec.hash_combine_demote_flushes == 0) {
    throw ConfigError("hash_combine_demote_flushes must be >= 1");
  }
  if (spec.freqbuf.enabled) {
    if (spec.freqbuf.table_budget_fraction <= 0.0 ||
        spec.freqbuf.table_budget_fraction >= 1.0) {
      throw ConfigError("freqbuf table_budget_fraction must be in (0, 1)");
    }
    if (!spec.combiner) {
      TEXTMR_LOG(kWarn) << "frequency-buffering without a combiner cannot "
                           "shrink intermediate data";
    }
  }
  if (spec.skew.enabled) {
    if (spec.grouping != Grouping::kSorted) {
      throw ConfigError(
          "skew-aware partitioning requires sorted grouping (the finalize "
          "merge relies on group order)");
    }
    if (spec.skew.place_threshold <= 0.0 || spec.skew.split_threshold <= 0.0) {
      throw ConfigError("skew thresholds must be > 0");
    }
    if (spec.skew.split_threshold < spec.skew.place_threshold) {
      throw ConfigError(
          "skew split_threshold must be >= place_threshold (a split key is "
          "a placed key first)");
    }
    if (spec.skew.max_split_shares < 2) {
      throw ConfigError("skew max_split_shares must be >= 2");
    }
  }
}

std::string part_name(std::uint32_t partition) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "part-r-%05u", partition);
  return buf;
}

std::filesystem::path reduce_output_path(const JobSpec& spec,
                                         std::uint32_t partition) {
  return spec.output_dir / part_name(partition);
}

std::filesystem::path reduce_task_output_path(const JobSpec& spec,
                                              const SkewPlan* plan,
                                              std::uint32_t partition) {
  if (plan != nullptr && !plan->empty()) {
    return skew_segment_path(spec, partition);
  }
  return reduce_output_path(spec, partition);
}

MemorySplit split_memory(const JobSpec& spec) {
  MemorySplit mem;
  mem.spill_buffer_bytes = spec.spill_buffer_bytes;
  if (spec.freqbuf.enabled) {
    mem.freq_table_budget_bytes = static_cast<std::uint64_t>(
        static_cast<double>(spec.spill_buffer_bytes) *
        spec.freqbuf.table_budget_fraction);
    mem.spill_buffer_bytes -=
        static_cast<std::size_t>(mem.freq_table_budget_bytes);
  }
  return mem;
}

MapTaskConfig make_map_task_config(const JobSpec& spec, const MemorySplit& mem,
                                   std::uint32_t task, std::uint32_t attempt,
                                   freqbuf::NodeKeyCache* node_cache,
                                   obs::TraceCollector* trace,
                                   const SkewPlan* skew_plan) {
  if (skew_plan != nullptr && skew_plan->empty()) skew_plan = nullptr;
  MapTaskConfig config;
  config.task_id = task;
  config.attempt = attempt;
  config.split = spec.inputs[task];
  config.num_partitions =
      skew_plan != nullptr ? skew_plan->num_physical() : spec.num_reducers;
  config.skew_plan = skew_plan;
  config.mapper = spec.mapper;
  config.combiner = spec.combiner;
  config.spill_buffer_bytes = mem.spill_buffer_bytes;
  config.spill_format = spec.spill_format;
  config.support_threads = spec.support_threads;
  config.combine_mode = spec.combine_mode;
  config.hash_combine_shards = spec.hash_combine_shards;
  config.hash_combine_watermark_bytes = spec.hash_combine_watermark_bytes;
  config.hash_combine_demote_flushes = spec.hash_combine_demote_flushes;
  config.scratch_dir = spec.scratch_dir;
  if (spec.use_spill_matcher) {
    config.spill_policy = [] {
      return std::make_unique<spillmatch::SpillMatcher>();
    };
  } else {
    const double threshold = spec.spill_threshold;
    config.spill_policy = [threshold] {
      return std::make_unique<spillmatch::FixedSpillPolicy>(threshold);
    };
  }
  config.freqbuf = spec.freqbuf;
  config.freq_table_budget_bytes = mem.freq_table_budget_bytes;
  config.node_cache = node_cache;
  config.keep_spill_runs = spec.keep_intermediates;
  config.trace = trace;
  return config;
}

ReduceTaskConfig make_reduce_task_config(
    const JobSpec& spec, std::uint32_t partition, std::uint32_t attempt,
    std::vector<io::SpillRunInfo> map_outputs, obs::TraceCollector* trace,
    const SkewPlan* skew_plan, ShuffleFetcher fetch) {
  if (skew_plan != nullptr && skew_plan->empty()) skew_plan = nullptr;
  ReduceTaskConfig config;
  config.partition = partition;
  config.attempt = attempt;
  config.map_outputs = std::move(map_outputs);
  config.fetch = std::move(fetch);
  config.reducer = spec.reducer;
  config.grouping = spec.grouping;
  config.spill_format = spec.spill_format;
  config.output_path = reduce_task_output_path(spec, skew_plan, partition);
  config.trace = trace;
  if (skew_plan != nullptr) {
    const SkewPlan::Entry* entry = skew_plan->entry_for_partition(partition);
    if (entry != nullptr && entry->mode == SkewPlan::Mode::kSplit) {
      // A split share sees one key's records; the (merge) combiner turns
      // them into partials the finalize merge reduces across shares.
      config.output_kind = ReduceOutputKind::kSegmentPartial;
      config.reducer =
          spec.skew.merge_combiner ? spec.skew.merge_combiner : spec.combiner;
    } else {
      config.output_kind = ReduceOutputKind::kSegmentText;
    }
    if (entry != nullptr) {
      // Heavy-key label: textmr-analyze attributes reduce stragglers to
      // the key, not just the partition id (ISSUE 7 satellite).
      config.trace_process_name =
          "reduce_" + std::to_string(partition) + " key=" + entry->key;
    }
  }
  return config;
}

void cleanup_map_attempt(const JobSpec& spec, std::uint32_t task,
                         std::uint32_t attempt) {
  remove_attempt_files(spec.scratch_dir, map_attempt_prefix(task, attempt));
}

void cleanup_reduce_attempt(const std::filesystem::path& output_path,
                            std::uint32_t attempt) {
  std::error_code ec;
  std::filesystem::remove(reduce_attempt_tmp_path(output_path, attempt), ec);
}

void fold_map_result(const MapTaskResult& task_result, JobResult& result) {
  result.metrics.work += task_result.map_thread;
  result.metrics.work += task_result.support_thread;
  result.metrics.map_work += task_result.map_thread;
  result.metrics.support_work += task_result.support_thread;
  result.counters += task_result.counters;
  result.metrics.map_thread_wall_ns += task_result.pipeline_wall_ns;
  result.metrics.support_thread_wall_ns += task_result.pipeline_wall_ns;
  result.metrics.map_thread_idle_ns +=
      task_result.map_thread.op_ns(Op::kMapIdle);
  result.metrics.support_thread_idle_ns +=
      task_result.support_thread.op_ns(Op::kSupportIdle);
  result.map_tasks.push_back(JobResult::MapTaskSummary{
      task_result.wall_ns, task_result.pipeline_wall_ns,
      task_result.map_thread.op_ns(Op::kMapIdle),
      task_result.support_thread.op_ns(Op::kSupportIdle), task_result.spills,
      task_result.final_spill_threshold, task_result.freq_sampling_fraction});
}

void fold_reduce_result(const ReduceTaskResult& reduce_result,
                        JobResult& result, bool include_output) {
  if (include_output) result.outputs.push_back(reduce_result.output_path);
  result.metrics.work += reduce_result.metrics;
  result.metrics.reduce_work += reduce_result.metrics;
  result.counters += reduce_result.counters;
  result.reduce_tasks.push_back(JobResult::ReduceTaskSummary{
      static_cast<std::uint32_t>(result.reduce_tasks.size()),
      reduce_result.wall_ns, reduce_result.metrics.shuffled_bytes,
      reduce_result.metrics.output_bytes});
}

void note_partition_bytes(JobResult& result, obs::TraceBuffer* driver_trace) {
  std::vector<std::uint64_t> bytes;
  bytes.reserve(result.reduce_tasks.size());
  for (const auto& task : result.reduce_tasks) {
    obs::record_instant(driver_trace, "skew", "partition_bytes", "partition",
                        static_cast<double>(task.partition), "bytes",
                        static_cast<double>(task.shuffled_bytes));
    bytes.push_back(task.shuffled_bytes);
  }
  if (bytes.empty()) return;
  std::sort(bytes.begin(), bytes.end());
  result.metrics.partition_bytes_max = bytes.back();
  result.metrics.partition_bytes_median = bytes[bytes.size() / 2];
}

std::string current_error_message() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

bool is_retryable_error() {
  try {
    throw;
  } catch (const InternalError&) {
    return false;
  } catch (const ConfigError&) {
    return false;
  } catch (...) {
    return true;
  }
}

void remove_attempt_files(const std::filesystem::path& dir,
                          const std::string& prefix) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0) {
      std::error_code rm_ec;
      std::filesystem::remove(entry.path(), rm_ec);
    }
  }
}

void backoff_sleep(std::uint32_t base_ms, std::uint32_t failed_attempt) {
  if (base_ms == 0) return;
  const std::uint64_t ms = static_cast<std::uint64_t>(base_ms)
                           << std::min<std::uint32_t>(failed_attempt, 10);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void RetryState::record_permanent_failure(const std::string& what) {
  record_permanent_error(std::make_exception_ptr(TaskFailedError(what)));
}

void RetryState::record_permanent_error(std::exception_ptr error) {
  textmr::MutexLock lock(error_mu);
  if (!job_error) job_error = std::move(error);
  job_failed.store(true, std::memory_order_relaxed);
}

void RetryState::rethrow_if_failed() {
  std::exception_ptr error;
  {
    textmr::MutexLock lock(error_mu);
    error = job_error;
  }
  if (error) std::rethrow_exception(error);
}

void note_retry(const char* kind, std::uint32_t id, std::uint32_t attempt,
                const std::string& cause, obs::TraceCollector* collector,
                obs::TraceBuffer** worker_trace, std::uint32_t pid,
                std::uint32_t tid, const std::string& worker_name) {
  TEXTMR_LOG(kWarn) << kind << " task " << id << " attempt " << attempt
                    << " failed (" << cause << "); retrying";
  if (collector != nullptr && *worker_trace == nullptr) {
    *worker_trace = collector->make_buffer(pid, tid, worker_name);
  }
  obs::record_instant(*worker_trace, "retry", "task_retry", "task",
                      static_cast<double>(id), "failed_attempt",
                      static_cast<double>(attempt));
}

}  // namespace textmr::mr
