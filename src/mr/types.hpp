#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "mr/counters.hpp"

namespace textmr::mr {

/// Map-side combine strategy (DESIGN.md §15). kSort is the classic
/// Hadoop shape: frame into the spill ring, sort, combine per key group,
/// spill. kHash combines on insert into per-task shard hash tables and
/// defers sorting to flush time (a radix pass on the 8-byte key prefix);
/// a memory watermark demotes a pressured shard back to the sort path,
/// so the two modes are byte-identical by construction and by the
/// differential grid.
enum class CombineMode : std::uint8_t { kSort, kHash };

/// Sink for intermediate records produced by map() (and by combine()).
/// Keys and values are opaque byte strings; the framework copies them
/// before returning, so callers may reuse their buffers.
class EmitSink {
 public:
  virtual ~EmitSink() = default;
  virtual void emit(std::string_view key, std::string_view value) = 0;
};

/// Identity and services of the running task, passed to begin_task.
/// `task_id` lets applications build globally unique record locations
/// (task_id, ordinal); `counters` (owned by the framework, valid for the
/// task's lifetime) collects user counters aggregated into
/// JobResult::counters.
struct TaskInfo {
  std::uint32_t task_id = 0;
  Counters* counters = nullptr;
};

/// User map function. One instance is created per map task (via
/// MapperFactory), so implementations may keep per-task scratch state
/// without synchronization.
///
/// The input record is one line of the input split, without its trailing
/// newline — the standard TextInputFormat contract. `offset` is the task-
/// relative record ordinal (some applications, e.g. InvertedIndex, fold it
/// into their values).
class Mapper {
 public:
  virtual ~Mapper() = default;
  /// Called once before the first map() call of a task.
  virtual void begin_task(const TaskInfo&) {}
  virtual void map(std::uint64_t offset, std::string_view line,
                   EmitSink& out) = 0;
};

/// Sequential access to the values of one key group. `next()` views are
/// valid until the next call.
class ValueStream {
 public:
  virtual ~ValueStream() = default;
  virtual std::optional<std::string_view> next() = 0;
};

/// User reduce function; also the signature of the optional combiner.
///
/// Combiners must be *key-preserving* (emit records only under the key
/// they were called with) and associative/commutative over values — the
/// framework may apply them zero or more times, on any subset of a key's
/// values, on either the spill path, the merge path, or the
/// frequency-buffering hash table (paper §III-A).
class Reducer {
 public:
  virtual ~Reducer() = default;
  /// Called once before the first reduce()/combine() call of a task.
  virtual void begin_task(const TaskInfo&) {}
  virtual void reduce(std::string_view key, ValueStream& values,
                      EmitSink& out) = 0;
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

/// Adapters so small apps/tests can use lambdas instead of classes.
class LambdaMapper final : public Mapper {
 public:
  using Fn = std::function<void(std::uint64_t, std::string_view, EmitSink&)>;
  explicit LambdaMapper(Fn fn) : fn_(std::move(fn)) {}
  void map(std::uint64_t offset, std::string_view line,
           EmitSink& out) override {
    fn_(offset, line, out);
  }

 private:
  Fn fn_;
};

class LambdaReducer final : public Reducer {
 public:
  using Fn = std::function<void(std::string_view, ValueStream&, EmitSink&)>;
  explicit LambdaReducer(Fn fn) : fn_(std::move(fn)) {}
  void reduce(std::string_view key, ValueStream& values,
              EmitSink& out) override {
    fn_(key, values, out);
  }

 private:
  Fn fn_;
};

/// ValueStream over an in-memory sequence; used by the frequency table,
/// the spill sorter and tests.
template <typename Container>
class VectorValueStream final : public ValueStream {
 public:
  explicit VectorValueStream(const Container& values) : values_(values) {}
  std::optional<std::string_view> next() override {
    if (index_ >= values_.size()) return std::nullopt;
    return std::string_view(values_[index_++]);
  }

 private:
  const Container& values_;
  std::size_t index_ = 0;
};

}  // namespace textmr::mr
