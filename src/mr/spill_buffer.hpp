#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "common/annotations.hpp"
#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "mr/record_arena.hpp"
#include "obs/trace.hpp"

namespace textmr::mr {

/// One sealed spill region handed to the support thread. `records` are
/// RecordRefs into the ring: each points at a framed record, already in
/// the spill-file format, so the sorter can write uncombined records as a
/// verbatim frame blit (SpillRunWriter::append_frame).
struct Spill {
  std::vector<RecordRef> records;
  io::SpillFormat format = io::SpillFormat::kCompactVarint;
  std::uint64_t ring_bytes = 0;   // ring bytes (incl. wrap padding) to free
  std::uint64_t data_bytes = 0;   // payload bytes (keys + values)
  std::uint64_t produce_ns = 0;   // wall time the map thread took to fill it
  std::uint64_t sequence = 0;
  bool is_final = false;          // the flush spill at end of input
};

/// Timing of one completed produce/consume pair, fed to the spill policy.
struct SpillTiming {
  std::uint64_t sequence = 0;
  std::uint64_t produce_ns = 0;
  std::uint64_t consume_ns = 0;
  std::uint64_t data_bytes = 0;
};

/// Circular in-memory buffer between the map thread (producer) and the
/// support thread (consumer), modeled on Hadoop's map-side kvbuffer
/// (paper §IV-A, Fig. 4).
///
/// The producer appends records *framed in the spill-file format*
/// ([header][key][value], see io::encode_frame_header) — the one and only
/// copy a record's bytes undergo on the map side: every later stage
/// (sort, combine grouping, spill write, merge) works through RecordRefs
/// and string_views into this ring (DESIGN.md §8). Once the bytes
/// accumulated in the current (unsealed) region reach
/// `threshold * capacity`, the region is sealed into a `Spill` and queued
/// for the consumer. The producer
/// keeps producing into the remaining free space and blocks only when the
/// ring is full — that blocked time is the paper's "map thread idle".
/// The consumer blocks when no sealed spill is pending — "support thread
/// idle". Both waits are measured and exposed.
///
/// Records never wrap: if a record does not fit in the tail gap, the gap
/// is padded and accounted to the current spill, and the record is placed
/// at the ring start. Spills are freed strictly FIFO, which makes the
/// ring bookkeeping a head/tail pair plus a used-byte count.
///
/// Thread contract: exactly one producer thread; up to `max_outstanding`
/// consumer ("support") threads, each cycling take() -> release(). With
/// more than one consumer, spills are sealed as soon as any consumer
/// could accept one (outstanding < max_outstanding), generalizing the
/// paper's 1-map/1-support pipeline to its "one or more support threads"
/// form (§IV-A). Releases may arrive out of order; ring space is
/// reclaimed in seal order as the release frontier advances.
class SpillBuffer {
 public:
  /// `trace`, when non-null, receives seal instants and fill-level /
  /// threshold counter samples. Both pipeline threads record into it,
  /// which is safe because every record happens under `mu_` (the one
  /// sanctioned exception to TraceBuffer's single-writer rule).
  /// `clock`, when non-null, replaces the monotonic clock for the
  /// produce/wait timing that feeds the spill policy — tests drive it
  /// with a common::ManualClock to pin eq. (1) inputs exactly.
  explicit SpillBuffer(std::size_t capacity_bytes,
                       double initial_threshold = 0.8,
                       std::uint32_t max_outstanding = 1,
                       io::SpillFormat format = io::SpillFormat::kCompactVarint,
                       obs::TraceBuffer* trace = nullptr,
                       const common::Clock* clock = nullptr);

  std::size_t capacity() const { return capacity_; }
  io::SpillFormat format() const { return format_; }

  // ---- producer side -------------------------------------------------

  /// Appends a record. Blocks while the ring is full (the wait is added
  /// to `producer_wait_ns`). Throws ConfigError if a single record can
  /// never fit.
  void put(std::uint32_t partition, std::string_view key,
           std::string_view value);

  /// Sets the spill threshold used for the *next* seal decision
  /// (clamped to [0.01, 0.99]). Called by the spill policy.
  void set_threshold(double threshold);
  double threshold() const;

  /// Seals whatever remains as a final spill (may be empty, in which case
  /// no spill is queued) and wakes the consumer, which will see
  /// end-of-stream after draining. Producer must call exactly once.
  void close();

  /// Poisons the buffer after a failure on either side: the producer's
  /// next put() throws, the consumer's next take() returns nullopt, and
  /// any blocked thread wakes. Idempotent; safe after close().
  void abort();

  // ---- consumer side -------------------------------------------------

  /// Blocks until a sealed spill is available (wait added to
  /// `consumer_wait_ns`) or the buffer is closed and drained (returns
  /// nullopt).
  std::optional<Spill> take() TEXTMR_LIFETIME_BOUND;

  /// Frees the ring space of the oldest outstanding spill. `consume_ns`
  /// is the wall time the support thread spent processing it; the pair
  /// (produce_ns, consume_ns) becomes the SpillTiming the policy sees.
  void release(const Spill& spill, std::uint64_t consume_ns);

  // ---- instrumentation -------------------------------------------------

  std::uint64_t producer_wait_ns() const;
  std::uint64_t consumer_wait_ns() const;
  std::uint64_t spills_sealed() const;

  /// Whether a thread is currently parked in put() (ring full) / take()
  /// (no sealed spill). Test seam: lets a ManualClock-driven test advance
  /// the clock only while the opposite side is provably inside its
  /// measured wait, making the wait-accounting assertions deterministic.
  bool producer_waiting() const;
  bool consumer_waiting() const;

  /// Timing of the most recently released spill, if any.
  std::optional<SpillTiming> last_timing() const;

 private:
  std::uint64_t free_bytes_locked() const TEXTMR_REQUIRES(mu_) {
    return capacity_ - used_;
  }
  // Moves the current region to the sealed queue.
  void seal_locked() TEXTMR_REQUIRES(mu_);

  const std::size_t capacity_;
  const io::SpillFormat format_;
  // Ring *payload* (framed records). Not guarded: the producer writes a
  // record's bytes under mu_, and once the region is sealed its bytes are
  // immutable until release(), so consumers read them lock-free through
  // the RecordRefs of the Spill they took.
  std::vector<char> ring_;  // check:allow(lock-coverage): see above

  mutable textmr::Mutex mu_{textmr::LockRank::kSpillBuffer,
                            "mr.spill_buffer"};
  textmr::CondVar space_available_;
  textmr::CondVar spill_available_;

  // Ring allocation state.
  std::size_t head_ TEXTMR_GUARDED_BY(mu_) = 0;  // oldest live byte
  std::size_t tail_ TEXTMR_GUARDED_BY(mu_) = 0;  // next allocation point
  std::uint64_t used_ TEXTMR_GUARDED_BY(mu_) = 0;

  // Current (unsealed) region, filled by the producer.
  std::vector<RecordRef> current_records_ TEXTMR_GUARDED_BY(mu_);
  std::uint64_t current_ring_bytes_ TEXTMR_GUARDED_BY(mu_) = 0;
  std::uint64_t current_data_bytes_ TEXTMR_GUARDED_BY(mu_) = 0;
  // First put after previous seal / producer wait during this region.
  std::uint64_t current_started_ns_ TEXTMR_GUARDED_BY(mu_) = 0;
  std::uint64_t current_wait_ns_ TEXTMR_GUARDED_BY(mu_) = 0;

  std::deque<Spill> sealed_ TEXTMR_GUARDED_BY(mu_);
  // Sealed or taken-but-unreleased spills.
  std::uint64_t outstanding_ TEXTMR_GUARDED_BY(mu_) = 0;
  // check:allow(lock-coverage): set once in the constructor, read-only after
  std::uint32_t max_outstanding_ = 1;
  // Out-of-order release bookkeeping: ring bytes of released spills that
  // are still blocked behind an unreleased earlier spill.
  std::map<std::uint64_t, std::uint64_t> released_ TEXTMR_GUARDED_BY(mu_);
  std::uint64_t next_free_sequence_ TEXTMR_GUARDED_BY(mu_) = 0;
  double threshold_ TEXTMR_GUARDED_BY(mu_);
  bool closed_ TEXTMR_GUARDED_BY(mu_) = false;
  bool aborted_ TEXTMR_GUARDED_BY(mu_) = false;
  std::uint64_t sequence_ TEXTMR_GUARDED_BY(mu_) = 0;

  std::uint64_t producer_wait_ns_ TEXTMR_GUARDED_BY(mu_) = 0;
  std::uint64_t consumer_wait_ns_ TEXTMR_GUARDED_BY(mu_) = 0;
  bool producer_waiting_ TEXTMR_GUARDED_BY(mu_) = false;
  bool consumer_waiting_ TEXTMR_GUARDED_BY(mu_) = false;
  std::optional<SpillTiming> last_timing_ TEXTMR_GUARDED_BY(mu_);

  obs::TraceBuffer* const trace_;  // pointee written only under mu_
  const common::Clock* const clock_;
};

}  // namespace textmr::mr
