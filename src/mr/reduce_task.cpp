#include "mr/reduce_task.hpp"

#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/stopwatch.hpp"
#include "mr/merger.hpp"
#include "mr/record_arena.hpp"
#include "mr/skew_partitioner.hpp"

namespace textmr::mr {
namespace {

/// Where reduce output goes: a part file in the normal case, a segment
/// file in skew mode. The group hooks bracket each reduce() call so the
/// segment writer knows the group key and extent.
class OutputSink : public EmitSink {
 public:
  virtual void begin_group(std::string_view /*key*/) {}
  virtual void end_group() {}
  virtual void close() = 0;
};

/// Buffered text output writer for final results: `key \t value \n`.
class PartFileWriter final : public OutputSink {
 public:
  PartFileWriter(const std::filesystem::path& path, TaskMetrics& metrics)
      : metrics_(metrics) {
    file_ = std::fopen(path.string().c_str(), "wb");
    if (file_ == nullptr) {
      throw IoError("cannot create output file " + path.string());
    }
    buffer_.reserve(kFlushBytes + 4096);
  }

  ~PartFileWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }

  void emit(std::string_view key, std::string_view value) override {
    const std::uint64_t t0 = monotonic_ns();
    buffer_.append(key.data(), key.size());
    buffer_.push_back('\t');
    buffer_.append(value.data(), value.size());
    buffer_.push_back('\n');
    metrics_.output_records += 1;
    metrics_.output_bytes += key.size() + value.size() + 2;
    if (buffer_.size() >= kFlushBytes) flush();
    metrics_.op_ns(Op::kOutputWrite) += monotonic_ns() - t0;
  }

  void close() override {
    const std::uint64_t t0 = monotonic_ns();
    flush();
    if (std::fclose(file_) != 0) {
      file_ = nullptr;
      throw IoError("close failed for reduce output");
    }
    file_ = nullptr;
    metrics_.op_ns(Op::kOutputWrite) += monotonic_ns() - t0;
  }

 private:
  static constexpr std::size_t kFlushBytes = 1 << 18;

  void flush() {
    if (buffer_.empty()) return;
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size()) {
      throw IoError("short write to reduce output");
    }
    buffer_.clear();
  }

  std::FILE* file_;
  std::string buffer_;
  TaskMetrics& metrics_;
};

/// Segment-file writer for skew mode (DESIGN.md §12). Buffers one
/// group's emissions — part-file text for kOutput, length-prefixed
/// combiner partials for kPartial — and appends one segment entry per
/// group that produced anything. Groups arrive in sorted order, so the
/// segment is sorted too (the finalize merge depends on that).
class SegmentSink final : public OutputSink {
 public:
  SegmentSink(const std::filesystem::path& path, SegmentKind kind,
              TaskMetrics& metrics)
      : writer_(path.string()), kind_(kind), metrics_(metrics) {}

  void begin_group(std::string_view key) override {
    group_key_.assign(key);
    blob_.clear();
  }

  void emit(std::string_view key, std::string_view value) override {
    const std::uint64_t t0 = monotonic_ns();
    if (kind_ == SegmentKind::kOutput) {
      blob_.append(key.data(), key.size());
      blob_.push_back('\t');
      blob_.append(value.data(), value.size());
      blob_.push_back('\n');
      metrics_.output_bytes += key.size() + value.size() + 2;
    } else {
      append_partial_value(blob_, value);
      metrics_.output_bytes += value.size();
    }
    metrics_.output_records += 1;
    metrics_.op_ns(Op::kOutputWrite) += monotonic_ns() - t0;
  }

  void end_group() override {
    if (blob_.empty()) return;  // group emitted nothing: no entry at all
    const std::uint64_t t0 = monotonic_ns();
    writer_.add(kind_, group_key_, blob_);
    metrics_.op_ns(Op::kOutputWrite) += monotonic_ns() - t0;
  }

  void close() override {
    const std::uint64_t t0 = monotonic_ns();
    writer_.finish();
    metrics_.op_ns(Op::kOutputWrite) += monotonic_ns() - t0;
  }

 private:
  SegmentWriter writer_;
  SegmentKind kind_;
  std::string group_key_;
  std::string blob_;
  TaskMetrics& metrics_;
};

/// Calls reduce() attributing sink time to kOutputWrite (self-accounted)
/// and the remainder to kReduceUser.
void call_reduce(Reducer& reducer, std::string_view key, ValueStream& values,
                 OutputSink& out, TaskMetrics& metrics) {
  const std::uint64_t before_sink = metrics.op_ns(Op::kOutputWrite);
  const std::uint64_t t0 = monotonic_ns();
  out.begin_group(key);
  reducer.reduce(key, values, out);
  out.end_group();
  const std::uint64_t elapsed = monotonic_ns() - t0;
  const std::uint64_t sink_delta =
      metrics.op_ns(Op::kOutputWrite) - before_sink;
  metrics.op_ns(Op::kReduceUser) += elapsed - std::min(elapsed, sink_delta);
  metrics.reduce_groups += 1;
}

/// One map output's contribution to this reduce partition: the raw framed
/// bytes from a single bulk read, plus RecordRefs decoded in place. The
/// records are never copied out of `bytes` (DESIGN.md §8).
struct FetchedRun {
  std::string bytes;
  std::vector<RecordRef> refs;
};

/// Heterogeneous string hashing so the hash-grouping path can probe with
/// string_views (no temporary std::string per record).
struct ShHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
struct ShEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

}  // namespace

std::filesystem::path reduce_attempt_tmp_path(
    const std::filesystem::path& output_path, std::uint32_t attempt) {
  return output_path.string() + ".a" + std::to_string(attempt) + ".tmp";
}

ReduceTaskResult run_reduce_task(const ReduceTaskConfig& config) {
  TEXTMR_CHECK(static_cast<bool>(config.reducer), "reduce task needs reducer");
  ReduceTaskResult result;
  result.output_path = config.output_path;
  const std::uint64_t task_start = monotonic_ns();
  TaskMetrics& metrics = result.metrics;

  obs::TraceBuffer* trace =
      config.trace != nullptr
          ? config.trace->make_buffer(
                obs::reduce_task_pid(config.partition),
                obs::kReduceThreadTid, "reduce",
                config.trace_process_name.empty()
                    ? "reduce_" + std::to_string(config.partition)
                    : config.trace_process_name)
          : nullptr;
  obs::SpanTimer task_span(trace, "task", "reduce_task");

  // ---- shuffle: fetch this partition from every map output --------------
  // In a cluster this is the over-the-network copy phase; here it is a
  // local read whose byte volume the simulator later prices as network
  // transfer. Each map output contributes one bulk read, decoded in place
  // into RecordRefs — no per-record copies. Records arrive sorted per map
  // output. The refs point into FetchedRun::bytes, so runs are built in
  // place (a string move could relocate a small buffer via SSO).
  std::vector<FetchedRun> fetched;
  fetched.reserve(config.map_outputs.size());
  {
    obs::SpanTimer shuffle_span(trace, "task", "shuffle");
    ScopedTimer shuffle_timer(metrics, Op::kShuffle);
    std::uint32_t run_index = 0;
    for (const auto& run : config.map_outputs) {
      fetched.emplace_back();
      FetchedRun& fetch = fetched.back();
      if (config.fetch) {
        obs::SpanTimer fetch_span(trace, "task", "shuffle_fetch");
        ShuffleFetchResult pulled =
            config.fetch(run_index, run, config.partition);
        fetch.bytes = std::move(pulled.bytes);
        if (pulled.over_wire) {
          metrics.shuffled_wire_bytes += fetch.bytes.size();
        }
        fetch_span.arg("bytes", static_cast<double>(fetch.bytes.size()));
        fetch_span.arg("over_wire", pulled.over_wire ? 1.0 : 0.0);
      } else {
        io::SpillRunReader reader(run.path, config.spill_format);
        fetch.bytes = reader.read_partition(config.partition);
      }
      fetch.refs =
          index_frames(fetch.bytes, config.partition, config.spill_format);
      metrics.shuffled_bytes += fetch.bytes.size();
      metrics.reduce_input_records += fetch.refs.size();
      ++run_index;
    }
    shuffle_span.arg("bytes", static_cast<double>(metrics.shuffled_bytes));
    shuffle_span.arg("records",
                     static_cast<double>(metrics.reduce_input_records));
  }

  std::unique_ptr<Reducer> reducer = config.reducer();
  reducer->begin_task(TaskInfo{config.partition, &result.counters});
  // Crash consistency: write to an attempt temp file, rename onto the
  // final name only after a successful close. A failed attempt leaves the
  // final path untouched (and its temp is removed by the engine).
  const std::filesystem::path tmp_path =
      reduce_attempt_tmp_path(config.output_path, config.attempt);
  std::unique_ptr<OutputSink> sink;
  if (config.output_kind == ReduceOutputKind::kPartFile) {
    sink = std::make_unique<PartFileWriter>(tmp_path, metrics);
  } else {
    sink = std::make_unique<SegmentSink>(
        tmp_path,
        config.output_kind == ReduceOutputKind::kSegmentText
            ? SegmentKind::kOutput
            : SegmentKind::kPartial,
        metrics);
  }
  OutputSink& out = *sink;

  obs::SpanTimer apply_span(trace, "task", "reduce_apply");
  if (config.grouping == Grouping::kSorted) {
    std::vector<std::unique_ptr<RecordCursor>> cursors;
    cursors.reserve(fetched.size());
    for (const auto& fetch : fetched) {
      cursors.push_back(std::make_unique<MemoryRunCursor>(&fetch.refs));
    }
    // Merge + group structural time is kReduceMerge; the group iteration
    // interleaves with reduce() calls, so we accumulate it as
    // total − (reduce user + output) deltas.
    const std::uint64_t merge_start = monotonic_ns();
    std::uint64_t user_and_output_before =
        metrics.op_ns(Op::kReduceUser) + metrics.op_ns(Op::kOutputWrite);
    MergeStream stream(std::move(cursors));
    KeyGroups groups(stream);
    while (auto key = groups.next_group()) {
      call_reduce(*reducer, *key, groups.values(), out, metrics);
    }
    const std::uint64_t elapsed = monotonic_ns() - merge_start;
    const std::uint64_t user_and_output =
        metrics.op_ns(Op::kReduceUser) + metrics.op_ns(Op::kOutputWrite) -
        user_and_output_before;
    metrics.op_ns(Op::kReduceMerge) +=
        elapsed - std::min(elapsed, user_and_output);
  } else {
    // Hash grouping (§VII future work): no global order; reduce() is
    // called per key in hash-iteration order. Values stay as views into
    // the fetched buffers; only each distinct key is materialized once.
    const std::uint64_t build_start = monotonic_ns();
    std::unordered_map<std::string, std::vector<std::string_view>, ShHash,
                       ShEq>
        groups;
    for (const auto& fetch : fetched) {
      for (const RecordRef& record : fetch.refs) {
        auto it = groups.find(record.key());
        if (it == groups.end()) {
          it = groups.emplace(std::string(record.key()),
                              std::vector<std::string_view>())
                   .first;
        }
        it->second.push_back(record.value());
      }
    }
    metrics.op_ns(Op::kReduceMerge) += monotonic_ns() - build_start;
    for (const auto& [key, values] : groups) {
      VectorValueStream<std::vector<std::string_view>> stream(values);
      call_reduce(*reducer, key, stream, out, metrics);
    }
  }

  apply_span.done();
  {
    obs::SpanTimer close_span(trace, "task", "output_close");
    out.close();
  }
  TEXTMR_FAILPOINT("reduce.output_rename");
  std::filesystem::rename(tmp_path, config.output_path);
  result.wall_ns = monotonic_ns() - task_start;
  return result;
}

}  // namespace textmr::mr
