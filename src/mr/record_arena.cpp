#include "mr/record_arena.hpp"

#include <algorithm>

namespace textmr::mr {

char* RecordArena::allocate(std::size_t bytes) {
  // Advance through retained chunks until one has room; grow only past the
  // last (an oversized record gets a dedicated chunk of its own size, so a
  // frame is always contiguous).
  while (active_chunk_ >= chunks_.size() ||
         chunk_used_ + bytes > chunks_[active_chunk_].size) {
    if (active_chunk_ + 1 < chunks_.size()) {
      ++active_chunk_;
    } else {
      const std::size_t size = std::max(chunk_bytes_, bytes);
      chunks_.push_back(Chunk{std::make_unique<char[]>(size), size});
      active_chunk_ = chunks_.size() - 1;
    }
    chunk_used_ = 0;
  }
  char* p = chunks_[active_chunk_].data.get() + chunk_used_;
  chunk_used_ += bytes;
  return p;
}

const RecordRef& RecordArena::append(std::uint32_t partition,
                                     std::string_view key,
                                     std::string_view value) {
  const std::size_t frame_bytes =
      io::encoded_record_size(key.size(), value.size(), format_);
  char* frame = allocate(frame_bytes);
  const std::size_t header =
      io::encode_frame_header(frame, key.size(), value.size(), format_);
  std::memcpy(frame + header, key.data(), key.size());
  std::memcpy(frame + header + key.size(), value.data(), value.size());
  records_.push_back(RecordRef{
      frame,
      key_prefix8(key),
      static_cast<std::uint32_t>(key.size()),
      static_cast<std::uint32_t>(value.size()),
      partition,
      static_cast<std::uint16_t>(header),
  });
  payload_bytes_ += key.size() + value.size();
  return records_.back();
}

void RecordArena::clear() {
  records_.clear();
  payload_bytes_ = 0;
  active_chunk_ = 0;
  chunk_used_ = 0;
}

std::vector<RecordRef> index_frames(std::string_view data,
                                    std::uint32_t partition,
                                    io::SpillFormat format) {
  std::vector<RecordRef> refs;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const io::FrameHeader header =
        io::decode_frame_header(data.substr(pos), format);
    const char* frame = data.data() + pos;
    refs.push_back(RecordRef{
        frame,
        key_prefix8({frame + header.header_size, header.key_size}),
        header.key_size,
        header.value_size,
        partition,
        header.header_size,
    });
    pos += static_cast<std::size_t>(header.header_size) + header.key_size +
           header.value_size;
  }
  return refs;
}

}  // namespace textmr::mr
