#pragma once

#include <string>

#include "mr/job.hpp"

namespace textmr::mr {

/// Renders a human-readable report of a finished job: phase wall clocks,
/// the Table-I-style per-operation breakdown of serialized work, volume
/// counters, and the intra-map parallelism summary (busy/idle per thread
/// role). Used by the CLI driver and handy in tests/examples.
std::string format_job_report(const JobResult& result,
                              const std::string& job_name = "job");

/// One-line summary: wall, work, user/framework split.
std::string format_job_summary(const JobResult& result);

}  // namespace textmr::mr
