#pragma once

#include <string>

#include "mr/job.hpp"

namespace textmr::mr {

/// Renders a human-readable report of a finished job: phase wall clocks,
/// the Table-I-style per-operation breakdown of serialized work, volume
/// counters, and the intra-map parallelism summary (busy/idle per thread
/// role). Used by the CLI driver and handy in tests/examples.
std::string format_job_report(const JobResult& result,
                              const std::string& job_name = "job");

/// One-line summary: wall, work, user/framework split.
std::string format_job_summary(const JobResult& result);

/// Machine-readable variant of the job report: one JSON document with the
/// wall clocks, the per-Op work breakdown (total / map / support / reduce
/// views), volume counters, intra-map idle accounting, per-map-task
/// details, and user counters. Written by `textmr run --metrics-json` and
/// embedded in bench JSON artifacts.
std::string format_job_metrics_json(const JobResult& result,
                                    const std::string& job_name = "job");

}  // namespace textmr::mr
