#include "mr/merger.hpp"

#include "common/error.hpp"
#include "common/stopwatch.hpp"

namespace textmr::mr {

MergeStream::MergeStream(std::vector<std::unique_ptr<RecordCursor>> cursors)
    : cursors_(std::move(cursors)) {
  heap_.reserve(cursors_.size());
  for (std::size_t i = 0; i < cursors_.size(); ++i) {
    if (!cursors_[i]->stable_views()) stable_views_ = false;
    if (auto record = cursors_[i]->next(); record.has_value()) {
      heap_.push_back(Head{*record, i});
      sift_up(heap_.size() - 1);
    }
  }
}

bool MergeStream::less(const Head& a, const Head& b) const {
  const int cmp = a.record.key.compare(b.record.key);
  if (cmp != 0) return cmp < 0;
  return a.cursor < b.cursor;
}

void MergeStream::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void MergeStream::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < n && less(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && less(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

std::optional<io::RecordView> MergeStream::next() {
  if (pending_advance_.has_value()) {
    const std::size_t cursor = *pending_advance_;
    pending_advance_.reset();
    if (auto record = cursors_[cursor]->next(); record.has_value()) {
      heap_[0] = Head{*record, cursor};
      sift_down(0);
    } else {
      heap_[0] = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) sift_down(0);
    }
  }
  if (heap_.empty()) return std::nullopt;
  // Hand out the heap top; refill that cursor lazily on the next call so
  // the returned views stay valid in the meantime.
  pending_advance_ = heap_[0].cursor;
  return heap_[0].record;
}

std::optional<std::string_view> KeyGroups::next_group() {
  // Drain values the caller did not consume.
  while (!group_exhausted_) value_stream_.next();

  if (!lookahead_.has_value()) {
    if (stream_done_) return std::nullopt;
    lookahead_ = stream_.next();
    if (!lookahead_.has_value()) {
      stream_done_ = true;
      return std::nullopt;
    }
  }
  if (stable_) {
    // Stream views outlive the group: pass them through untouched.
    current_key_ = lookahead_->key;
    pending_value_ = lookahead_->value;
  } else {
    key_stash_.assign(lookahead_->key);
    value_stash_.assign(lookahead_->value);
    current_key_ = key_stash_;
    pending_value_ = value_stash_;
  }
  pending_value_ready_ = true;
  lookahead_.reset();
  group_exhausted_ = false;
  return current_key_;
}

std::optional<std::string_view>
KeyGroups::GroupValueStream::next() {
  KeyGroups& g = owner_;
  if (g.pending_value_ready_) {
    g.pending_value_ready_ = false;
    return g.pending_value_;
  }
  if (g.group_exhausted_) return std::nullopt;
  auto record = g.stream_.next();
  if (!record.has_value()) {
    g.stream_done_ = true;
    g.group_exhausted_ = true;
    return std::nullopt;
  }
  if (record->key != g.current_key_) {
    g.lookahead_ = record;  // first record of the next group
    g.group_exhausted_ = true;
    return std::nullopt;
  }
  if (g.stable_) return record->value;
  // Stash the value: the view from the merge stream is only valid until
  // the stream's next() call, and callers may hold it across one step.
  // assign() reuses the stash's capacity — no steady-state allocation.
  g.value_stash_.assign(record->value);
  g.pending_value_ = g.value_stash_;
  return g.pending_value_;
}

namespace {

class CombineToRunSink final : public EmitSink {
 public:
  CombineToRunSink(io::SpillRunWriter& writer, std::uint32_t partition,
                   std::string_view expected_key)
      : writer_(writer), partition_(partition), expected_key_(expected_key) {}

  void emit(std::string_view key, std::string_view value) override {
    TEXTMR_CHECK(key == expected_key_,
                 "combiner must be key-preserving (merge path)");
    writer_.append(partition_, key, value);
  }

 private:
  io::SpillRunWriter& writer_;
  std::uint32_t partition_;
  std::string_view expected_key_;
};

/// Counts values while forwarding, so single-value groups skip the
/// combiner without materializing anything. `first` must stay valid for
/// the stream's lifetime (the caller owns the backing scratch buffer).
class SingleLookaheadStream final : public ValueStream {
 public:
  SingleLookaheadStream(std::string_view first, ValueStream& rest)
      : first_(first), rest_(rest) {}

  std::optional<std::string_view> next() override {
    if (!first_given_) {
      first_given_ = true;
      return first_;
    }
    return rest_.next();
  }

 private:
  std::string_view first_;
  bool first_given_ = false;
  ValueStream& rest_;
};

}  // namespace

io::SpillRunInfo merge_runs(const std::vector<io::SpillRunInfo>& runs,
                            Reducer* combiner, std::string_view out_path,
                            std::uint32_t num_partitions,
                            io::SpillFormat format, TaskMetrics& metrics) {
  const std::uint64_t merge_start = monotonic_ns();
  std::uint64_t combine_ns = 0;

  io::SpillRunWriter writer(std::string(out_path), num_partitions, format);
  // Scratch for the one-step lookahead below; hoisted so steady state
  // reuses capacity instead of allocating per key group.
  std::string first_scratch;
  std::string second_scratch;
  for (std::uint32_t partition = 0; partition < num_partitions; ++partition) {
    std::vector<std::unique_ptr<RecordCursor>> cursors;
    cursors.reserve(runs.size());
    for (const auto& run : runs) {
      io::SpillRunReader reader(run.path, format);
      cursors.push_back(
          std::make_unique<FileRunCursor>(reader.open(partition)));
    }
    MergeStream stream(std::move(cursors));
    KeyGroups groups(stream);
    while (auto key = groups.next_group()) {
      auto first = groups.values().next();
      TEXTMR_CHECK(first.has_value(), "empty key group in merge");
      // Stash before pulling the second value: group value views are only
      // valid until the next call.
      first_scratch.assign(*first);
      auto second = groups.values().next();
      if (!second.has_value() || combiner == nullptr) {
        writer.append(partition, *key, first_scratch);
        if (second.has_value()) writer.append(partition, *key, *second);
        while (auto value = groups.values().next()) {
          writer.append(partition, *key, *value);
        }
        continue;
      }
      // >= 2 values and a combiner: stream them through combine().
      const std::uint64_t c0 = monotonic_ns();
      second_scratch.assign(*second);
      SingleLookaheadStream tail(second_scratch, groups.values());
      SingleLookaheadStream values(first_scratch, tail);
      CombineToRunSink sink(writer, partition, *key);
      combiner->reduce(*key, values, sink);
      combine_ns += monotonic_ns() - c0;
    }
  }
  auto info = writer.finish();
  const std::uint64_t total_ns = monotonic_ns() - merge_start;
  metrics.op_ns(Op::kMergeCombine) += combine_ns;
  metrics.op_ns(Op::kMerge) += total_ns - std::min(total_ns, combine_ns);
  metrics.merged_records += info.records;
  metrics.merged_bytes += info.bytes;
  return info;
}

}  // namespace textmr::mr
