#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.hpp"
#include "io/record.hpp"
#include "io/spill_file.hpp"
#include "mr/metrics.hpp"
#include "mr/record_arena.hpp"
#include "mr/types.hpp"

namespace textmr::mr {

/// Minimal sorted-record source abstraction, so the k-way merge works the
/// same over spill-run files (map-side merge), fetched in-memory runs
/// (reduce-side merge) and test fixtures.
class RecordCursor {
 public:
  virtual ~RecordCursor() = default;
  /// Next record in key order; the view is valid until the next call on
  /// this cursor (longer if stable_views()).
  virtual std::optional<io::RecordView> next() = 0;
  /// True when every view this cursor hands out stays valid until the
  /// cursor is destroyed (records live in caller-owned memory, not in a
  /// reused read buffer). Downstream stages use this to skip defensive
  /// copies: KeyGroups over an all-stable merge holds raw views instead
  /// of stashing each key/value into owned strings.
  virtual bool stable_views() const { return false; }
};

/// Cursor over one partition of a spill-run file. Views point into the
/// cursor's read buffer and are invalidated by the next read — not stable.
class FileRunCursor final : public RecordCursor {
 public:
  explicit FileRunCursor(io::RunCursor cursor) : cursor_(std::move(cursor)) {}
  std::optional<io::RecordView> next() TEXTMR_LIFETIME_BOUND override {
    return cursor_.next();
  }
  std::uint64_t bytes_read() const { return cursor_.bytes_read(); }

 private:
  io::RunCursor cursor_;
};

/// Cursor over a sorted in-memory vector of records (test fixtures,
/// pre-materialized runs). The records outlive the cursor, so views are
/// stable.
class VectorRunCursor final : public RecordCursor {
 public:
  explicit VectorRunCursor(const std::vector<io::Record>* records)
      : records_(records) {}
  std::optional<io::RecordView> next() override {
    if (index_ >= records_->size()) return std::nullopt;
    const auto& r = (*records_)[index_++];
    return io::RecordView{r.key, r.value};
  }
  bool stable_views() const override { return true; }

 private:
  const std::vector<io::Record>* records_;
  std::size_t index_ = 0;
};

/// Cursor over sorted RecordRefs into caller-owned frame storage (a bulk
/// shuffle fetch indexed by index_frames, or a RecordArena). The
/// reduce-side zero-copy path: no io::Record is ever materialized.
class MemoryRunCursor final : public RecordCursor {
 public:
  explicit MemoryRunCursor(const std::vector<RecordRef>* records)
      : records_(records) {}
  std::optional<io::RecordView> next() override {
    if (index_ >= records_->size()) return std::nullopt;
    const RecordRef& r = (*records_)[index_++];
    return io::RecordView{r.key(), r.value()};
  }
  bool stable_views() const override { return true; }

 private:
  const std::vector<RecordRef>* records_;
  std::size_t index_ = 0;
};

/// K-way merge of sorted cursors into one key-ordered stream.
/// Stability across cursors follows cursor index, which callers arrange
/// to be deterministic (spill sequence / map task id).
class MergeStream {
 public:
  explicit MergeStream(std::vector<std::unique_ptr<RecordCursor>> cursors);

  /// Next record in global key order; view valid until the next call
  /// (longer if stable_views()).
  std::optional<io::RecordView> next() TEXTMR_LIFETIME_BOUND;

  /// True when every input cursor has stable views — then views handed
  /// out by next() remain valid for the life of the merge.
  bool stable_views() const { return stable_views_; }

 private:
  struct Head {
    io::RecordView record;
    std::size_t cursor;
  };
  // `heap_` is a binary min-heap on (key, cursor index).
  bool less(const Head& a, const Head& b) const;
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<std::unique_ptr<RecordCursor>> cursors_;
  std::vector<Head> heap_;
  std::optional<std::size_t> pending_advance_;  // cursor to refill on next()
  bool stable_views_ = true;
};

/// Iterates a MergeStream one key group at a time. The group's values are
/// streamed (never materialized), which keeps reduce-side memory constant
/// even for keys with millions of values.
///
/// Over a stable-view stream (MemoryRunCursor inputs — the reduce path)
/// keys and values are passed through as raw views with no per-record
/// copies; otherwise each is stashed into a reused owned buffer, so the
/// steady-state cost is a memcpy but no allocation either way.
class KeyGroups {
 public:
  explicit KeyGroups(MergeStream& stream)
      : stream_(stream), stable_(stream.stable_views()) {}

  /// Advances to the next key group (draining any unconsumed values of
  /// the previous group). Returns the key, or nullopt at end of stream.
  /// The returned view is stable for the group's lifetime.
  std::optional<std::string_view> next_group() TEXTMR_LIFETIME_BOUND;

  /// Value stream of the current group. Valid until next_group().
  ValueStream& values() TEXTMR_LIFETIME_BOUND { return value_stream_; }

 private:
  class GroupValueStream final : public ValueStream {
   public:
    explicit GroupValueStream(KeyGroups& owner) : owner_(owner) {}
    std::optional<std::string_view> next() override;

   private:
    KeyGroups& owner_;
  };

  MergeStream& stream_;
  const bool stable_;
  GroupValueStream value_stream_{*this};
  // Views of the current key / pending value; over a non-stable stream
  // they point into the owned stashes below.
  std::string_view current_key_;
  std::string_view pending_value_;
  std::string key_stash_;
  std::string value_stash_;
  bool pending_value_ready_ = false;  // pending_value_ not yet handed out
  std::optional<io::RecordView> lookahead_;
  bool group_exhausted_ = true;
  bool stream_done_ = false;
};

/// Map-side final merge: merges `runs` partition by partition, applying
/// the combiner once per key group, into a single output run file.
/// Timing: structural work to Op::kMerge, user combine to Op::kCombine.
io::SpillRunInfo merge_runs(const std::vector<io::SpillRunInfo>& runs,
                            Reducer* combiner, std::string_view out_path,
                            std::uint32_t num_partitions,
                            io::SpillFormat format, TaskMetrics& metrics);

}  // namespace textmr::mr
