#include "mr/spill_sorter.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/stopwatch.hpp"

namespace textmr::mr {
namespace {

/// ValueStream over a run [begin, end) of sorted RecordRefs sharing a key.
class RefValueStream final : public ValueStream {
 public:
  RefValueStream(const RecordRef* begin, const RecordRef* end)
      : it_(begin), end_(end) {}

  std::optional<std::string_view> next() override {
    if (it_ == end_) return std::nullopt;
    return (it_++)->value();
  }

 private:
  const RecordRef* it_;
  const RecordRef* end_;
};

/// Sink appending combiner output to the run writer under a fixed
/// (partition, key); enforces the key-preserving combiner contract.
class CombineToRunSink final : public EmitSink {
 public:
  CombineToRunSink(io::SpillRunWriter& writer, std::uint32_t partition,
                   std::string_view expected_key)
      : writer_(writer), partition_(partition), expected_key_(expected_key) {}

  void emit(std::string_view key, std::string_view value) override {
    TEXTMR_CHECK(key == expected_key_,
                 "combiner must be key-preserving (spill path)");
    writer_.append(partition_, key, value);
    ++records_;
  }

  std::uint64_t records() const { return records_; }

 private:
  io::SpillRunWriter& writer_;
  std::uint32_t partition_;
  std::string_view expected_key_;
  std::uint64_t records_ = 0;
};

}  // namespace

io::SpillRunInfo sort_and_spill(Spill& spill, Reducer* combiner,
                                std::string_view run_path,
                                std::uint32_t num_partitions,
                                io::SpillFormat format, TaskMetrics& metrics,
                                obs::TraceBuffer* trace) {
  TEXTMR_FAILPOINT("support.sort");
  {
    obs::SpanTimer sort_span(trace, "spill", "spill_sort");
    sort_span.arg("records", static_cast<double>(spill.records.size()));
    ScopedTimer sort_timer(metrics, Op::kSort);
    // record_ref_less decides almost every text-key pair on the
    // denormalized 8-byte prefix without touching ring memory.
    std::sort(spill.records.begin(), spill.records.end(), record_ref_less);
  }

  obs::SpanTimer write_span(trace, "spill", "spill_write");

  io::SpillRunWriter writer(std::string(run_path), num_partitions, format);
  // Records are framed in the ring; when the run file speaks the same
  // format, uncombined records are written as verbatim frame blits.
  const bool blit = spill.format == format;
  const std::uint64_t pass_start = monotonic_ns();
  std::uint64_t combine_ns = 0;

  const RecordRef* const data = spill.records.data();
  const std::size_t n = spill.records.size();
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && data[j].partition == data[i].partition &&
           record_key_equal(data[j], data[i])) {
      ++j;
    }
    if (combiner != nullptr && j - i > 1) {
      const std::uint64_t c0 = monotonic_ns();
      RefValueStream values(data + i, data + j);
      CombineToRunSink sink(writer, data[i].partition, data[i].key());
      combiner->reduce(data[i].key(), values, sink);
      combine_ns += monotonic_ns() - c0;
    } else if (blit) {
      for (std::size_t r = i; r < j; ++r) {
        writer.append_frame(data[r].partition, data[r].frame_view());
      }
    } else {
      for (std::size_t r = i; r < j; ++r) {
        writer.append(data[r].partition, data[r].key(), data[r].value());
      }
    }
    i = j;
  }

  auto info = writer.finish();
  const std::uint64_t pass_ns = monotonic_ns() - pass_start;
  write_span.arg("records", static_cast<double>(info.records));
  write_span.arg("bytes", static_cast<double>(info.bytes));
  write_span.arg("combine_ms", static_cast<double>(combine_ns) * 1e-6);
  metrics.op_ns(Op::kCombine) += combine_ns;
  metrics.op_ns(Op::kSpillWrite) += pass_ns - std::min(pass_ns, combine_ns);
  metrics.spilled_records += info.records;
  metrics.spilled_bytes += info.bytes;
  metrics.spill_count += 1;
  return info;
}

}  // namespace textmr::mr
