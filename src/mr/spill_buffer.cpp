#include "mr/spill_buffer.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/mutex.hpp"
#include "common/stopwatch.hpp"

namespace textmr::mr {
namespace {

constexpr double kMinThreshold = 0.01;
constexpr double kMaxThreshold = 0.99;

}  // namespace

SpillBuffer::SpillBuffer(std::size_t capacity_bytes, double initial_threshold,
                         std::uint32_t max_outstanding, io::SpillFormat format,
                         obs::TraceBuffer* trace, const common::Clock* clock)
    : capacity_(capacity_bytes),
      format_(format),
      ring_(capacity_bytes),
      max_outstanding_(max_outstanding),
      trace_(trace),
      clock_(clock != nullptr ? clock : &common::system_clock()) {
  TEXTMR_CHECK(capacity_bytes >= 1024, "spill buffer must be >= 1 KiB");
  TEXTMR_CHECK(max_outstanding >= 1, "need >= 1 outstanding spill slot");
  threshold_ = std::clamp(initial_threshold, kMinThreshold, kMaxThreshold);
}

void SpillBuffer::set_threshold(double threshold) {
  MutexLock lock(mu_);
  threshold_ = std::clamp(threshold, kMinThreshold, kMaxThreshold);
  obs::record_counter(trace_, "spill", "spill_threshold", threshold_);
}

double SpillBuffer::threshold() const {
  MutexLock lock(mu_);
  return threshold_;
}

void SpillBuffer::seal_locked() {
  if (current_records_.empty()) return;
  Spill spill;
  spill.records = std::move(current_records_);
  spill.format = format_;
  spill.ring_bytes = current_ring_bytes_;
  spill.data_bytes = current_data_bytes_;
  spill.produce_ns = clock_->now_ns() - current_started_ns_ - current_wait_ns_;
  spill.sequence = sequence_++;
  current_records_ = {};
  current_ring_bytes_ = 0;
  current_data_bytes_ = 0;
  current_wait_ns_ = 0;
  sealed_.push_back(std::move(spill));
  ++outstanding_;
  if (trace_ != nullptr) {
    const Spill& sealed = sealed_.back();
    obs::record_instant(
        trace_, "spill", "spill_seal", "sequence",
        static_cast<double>(sealed.sequence), "data_bytes",
        static_cast<double>(sealed.data_bytes), "produce_ms",
        static_cast<double>(sealed.produce_ns) * 1e-6);
    obs::record_counter(trace_, "spill", "buffer_fill",
                        static_cast<double>(used_) /
                            static_cast<double>(capacity_));
  }
  spill_available_.notify_one();
}

void SpillBuffer::put(std::uint32_t partition, std::string_view key,
                      std::string_view value) {
  // One frame = the record's single in-memory copy; everything downstream
  // points into it.
  const std::uint64_t need =
      io::encoded_record_size(key.size(), value.size(), format_);
  if (need > capacity_) {
    throw ConfigError("record of " + std::to_string(need) +
                      " framed bytes exceeds spill buffer capacity " +
                      std::to_string(capacity_));
  }
  MutexLock lock(mu_);
  TEXTMR_CHECK(!closed_, "put after close");
  if (aborted_) throw InternalError("spill buffer aborted (consumer failed)");
  if (current_records_.empty()) {
    current_started_ns_ = clock_->now_ns();
  }

  // Reserve `need` contiguous bytes, padding past the wrap point if the
  // tail gap is too small. Blocks while the ring is full.
  std::uint64_t pad = 0;
  while (true) {
    if (used_ == 0) {
      head_ = tail_ = 0;  // empty: restart at the origin for max contiguity
    }
    pad = (tail_ + need <= capacity_) ? 0 : capacity_ - tail_;
    if (free_bytes_locked() >= need + pad) break;
    // Hadoop behaviour: a full buffer forces a spill of the current region
    // regardless of the threshold (otherwise producer and consumer would
    // deadlock waiting on each other).
    if (outstanding_ < max_outstanding_) seal_locked();
    const std::uint64_t wait_start = clock_->now_ns();
    producer_waiting_ = true;
    space_available_.wait(mu_);
    producer_waiting_ = false;
    const std::uint64_t waited = clock_->now_ns() - wait_start;
    producer_wait_ns_ += waited;
    current_wait_ns_ += waited;
    if (aborted_) throw InternalError("spill buffer aborted (consumer failed)");
  }

  if (pad > 0) {
    used_ += pad;
    current_ring_bytes_ += pad;
    tail_ = 0;
  }
  char* dest = ring_.data() + tail_;
  const std::size_t header =
      io::encode_frame_header(dest, key.size(), value.size(), format_);
  std::memcpy(dest + header, key.data(), key.size());
  std::memcpy(dest + header + key.size(), value.data(), value.size());
  current_records_.push_back(RecordRef{
      dest,
      key_prefix8(key),
      static_cast<std::uint32_t>(key.size()),
      static_cast<std::uint32_t>(value.size()),
      partition,
      static_cast<std::uint16_t>(header),
  });
  tail_ += need;
  if (tail_ == capacity_) tail_ = 0;
  used_ += need;
  current_ring_bytes_ += need;
  current_data_bytes_ += key.size() + value.size();

  // Threshold-based seal. The paper's model (§IV-C) seals a region only
  // when a support thread is free: while all consumers are busy the
  // region keeps growing (with one support thread that is what makes
  // m_i = max{xM, min{(p/c)·m_{i-1}, M − m_{i-1}}}).
  if (outstanding_ < max_outstanding_ &&
      current_ring_bytes_ >= threshold_ * static_cast<double>(capacity_)) {
    seal_locked();
  }
}

void SpillBuffer::close() {
  MutexLock lock(mu_);
  TEXTMR_CHECK(!closed_, "close called twice");
  if (!current_records_.empty()) {
    seal_locked();
    sealed_.back().is_final = true;
  }
  closed_ = true;
  spill_available_.notify_all();
}

void SpillBuffer::abort() {
  MutexLock lock(mu_);
  aborted_ = true;
  space_available_.notify_all();
  spill_available_.notify_all();
}

std::optional<Spill> SpillBuffer::take() {
  MutexLock lock(mu_);
  while (sealed_.empty() && !closed_ && !aborted_) {
    const std::uint64_t wait_start = clock_->now_ns();
    consumer_waiting_ = true;
    spill_available_.wait(mu_);
    consumer_waiting_ = false;
    consumer_wait_ns_ += clock_->now_ns() - wait_start;
  }
  if (aborted_ || sealed_.empty()) return std::nullopt;
  Spill spill = std::move(sealed_.front());
  sealed_.pop_front();
  return spill;
}

void SpillBuffer::release(const Spill& spill, std::uint64_t consume_ns) {
  MutexLock lock(mu_);
  TEXTMR_CHECK(outstanding_ > 0, "release without outstanding spill");
  --outstanding_;
  // Ring space is reclaimed in seal order; a spill released ahead of an
  // earlier one parks until the frontier reaches it.
  released_.emplace(spill.sequence, spill.ring_bytes);
  while (!released_.empty() &&
         released_.begin()->first == next_free_sequence_) {
    const std::uint64_t bytes = released_.begin()->second;
    TEXTMR_CHECK(used_ >= bytes, "release exceeds ring usage");
    head_ = (head_ + bytes) % capacity_;
    used_ -= bytes;
    released_.erase(released_.begin());
    ++next_free_sequence_;
  }
  last_timing_ = SpillTiming{spill.sequence, spill.produce_ns, consume_ns,
                             spill.data_bytes};
  obs::record_counter(trace_, "spill", "buffer_fill",
                      static_cast<double>(used_) /
                          static_cast<double>(capacity_));
  // A consumer just became free; if the producer's region already passed
  // the threshold, seal it now so that consumer does not idle until the
  // next put().
  if (!closed_ && outstanding_ < max_outstanding_ &&
      current_ring_bytes_ >= threshold_ * static_cast<double>(capacity_) &&
      !current_records_.empty()) {
    seal_locked();
  }
  space_available_.notify_one();
}

std::uint64_t SpillBuffer::producer_wait_ns() const {
  MutexLock lock(mu_);
  return producer_wait_ns_;
}

bool SpillBuffer::producer_waiting() const {
  MutexLock lock(mu_);
  return producer_waiting_;
}

bool SpillBuffer::consumer_waiting() const {
  MutexLock lock(mu_);
  return consumer_waiting_;
}

std::uint64_t SpillBuffer::consumer_wait_ns() const {
  MutexLock lock(mu_);
  return consumer_wait_ns_;
}

std::uint64_t SpillBuffer::spills_sealed() const {
  MutexLock lock(mu_);
  return sequence_;
}

std::optional<SpillTiming> SpillBuffer::last_timing() const {
  MutexLock lock(mu_);
  return last_timing_;
}

}  // namespace textmr::mr
