#pragma once

// Map-side sharded hash-combine (DESIGN.md §15): the Metis-style
// generalization of frequency-buffering from "top-k keys" to the whole
// keyspace. Each map task owns P shard hash tables; a record is routed to
// a shard by key hash and combined *on insert* (open addressing, 8-byte
// big-endian key-prefix confirm, then full key). Sorting is deferred to
// flush time: a stable LSD radix pass over (partition, key prefix) with a
// full-key fallback comparison on prefix ties — exactly record_ref_less
// order, so the emitted runs are indistinguishable from sort-spill runs.
//
// Memory discipline: every shard has a byte watermark. Breaching it
// flushes the shard to a sorted combined run and keeps hashing; a shard
// that keeps breaching (demote_after_flushes) is *demoted* to the
// existing sort-spill path (RecordArena + sort_and_spill), so behavior
// under pressure is the proven baseline path, not a new one.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "io/spill_file.hpp"
#include "mr/metrics.hpp"
#include "mr/record_arena.hpp"
#include "mr/types.hpp"
#include "obs/trace.hpp"

namespace textmr::mr {

struct HashCombineConfig {
  std::uint32_t num_shards = 8;
  /// Per-shard resident-byte watermark; 0 derives it from
  /// `memory_budget_bytes / num_shards` (floored at 32 KiB) — the hash
  /// tables replace the spill ring, so they inherit its budget.
  std::size_t watermark_bytes = 0;
  /// A shard that breaches its watermark this many times is demoted to
  /// the sort-spill path for the rest of the task.
  std::uint32_t demote_after_flushes = 4;
  std::size_t memory_budget_bytes = 16u << 20;
  std::uint32_t num_partitions = 1;
  io::SpillFormat format = io::SpillFormat::kCompactVarint;
};

struct HashCombineStats {
  std::uint64_t records = 0;    // inserts seen
  std::uint64_t hits = 0;       // probe hits (combined or chained in place)
  std::uint64_t flushes = 0;    // watermark flushes (hash shards)
  std::uint64_t demotions = 0;  // shards demoted to the sort-spill path
};

/// The per-task shard set. Single-threaded: lives on the map thread and
/// is driven from the emit sink; flush work (radix sort + run write) is
/// self-timed into `flush_ns()` so the caller can subtract it from the
/// surrounding emit interval (map_task.cpp does).
class HashCombineShards {
 public:
  /// `combiner` may be null (values chain per key instead of combining).
  /// `next_run_path` names each flushed run; `metrics` receives
  /// kSort/kCombine/kSpillWrite time and spill volume counters.
  HashCombineShards(const HashCombineConfig& config, Reducer* combiner,
                    std::function<std::string(std::uint64_t sequence)>
                        next_run_path,
                    TaskMetrics& metrics, obs::TraceBuffer* trace);
  ~HashCombineShards();

  HashCombineShards(const HashCombineShards&) = delete;
  HashCombineShards& operator=(const HashCombineShards&) = delete;

  /// Routes one map-output record: combine-on-insert in its shard's
  /// table, or arena append when the shard is demoted. May flush.
  void insert(std::uint32_t partition, std::string_view key,
              std::string_view value);

  /// Flushes all residue and returns every run written over the task's
  /// lifetime, in write order. The common no-pressure case produces
  /// exactly one run: all shards' resident entries globally radix-sorted
  /// into a single file (no merge needed downstream).
  std::vector<io::SpillRunInfo> finish();

  const HashCombineStats& stats() const { return stats_; }
  /// Total time spent inside flushes (sort + combine + write), so the
  /// caller can keep pure insert cost attributable to emit.
  std::uint64_t flush_ns() const { return flush_ns_; }

 private:
  struct Entry {
    RecordRef key_ref;  // frame (empty value) in the shard's key arena
    std::uint64_t hash = 0;
    std::uint32_t value_head = kNil;
    std::uint32_t value_tail = kNil;
  };

  struct Shard {
    std::vector<std::uint32_t> slots;  // entry index + 1; 0 = empty
    std::vector<Entry> entries;
    RecordArena keys;            // framed keys, stable addresses
    std::vector<char> values;    // chained value blocks (offset-addressed)
    std::uint64_t flush_count = 0;
    std::uint64_t records = 0;
    std::uint64_t hits = 0;
    bool demoted = false;
    RecordArena spill;  // demoted mode: framed records for sort_and_spill
  };

  static constexpr std::uint32_t kNil = 0xffffffffu;

  void hash_insert(Shard& shard, std::uint32_t shard_index,
                   std::uint32_t partition, std::string_view key,
                   std::string_view value);
  void demoted_insert(Shard& shard, std::uint32_t partition,
                      std::string_view key, std::string_view value);
  void combine_into(Shard& shard, Entry& entry, std::string_view value);

  std::uint32_t alloc_block(Shard& shard, std::string_view value);
  std::size_t resident_bytes(const Shard& shard) const;
  void grow_slots(Shard& shard);

  /// Sorts `items` into record_ref_less order: stable LSD radix over the
  /// 8-byte key prefix, a stable counting pass over the partition, then a
  /// full-key comparison fallback on equal-(partition, prefix) spans.
  struct FlushItem {
    std::uint64_t prefix;
    std::uint32_t partition;
    std::uint32_t entry;
    std::uint32_t shard;
  };
  void radix_sort(std::vector<FlushItem>& items);
  void write_sorted(const std::vector<FlushItem>& items,
                    io::SpillRunWriter& writer);

  void flush_shard(Shard& shard, std::uint32_t shard_index);
  void flush_demoted(Shard& shard, std::uint32_t shard_index, bool final);

  HashCombineConfig config_;
  std::size_t watermark_;
  Reducer* combiner_;
  std::function<std::string(std::uint64_t)> next_run_path_;
  TaskMetrics& metrics_;
  obs::TraceBuffer* trace_;

  std::vector<Shard> shards_;
  std::vector<io::SpillRunInfo> runs_;
  std::uint64_t run_sequence_ = 0;
  HashCombineStats stats_;
  std::uint64_t flush_ns_ = 0;
  std::string combine_scratch_;  // staging for combiner output (reused)
  std::vector<FlushItem> flush_items_;      // reused across flushes
  std::vector<FlushItem> flush_scratch_;    // radix ping-pong buffer
  std::vector<std::uint32_t> part_count_;   // partition counting-sort buckets
  bool finished_ = false;
};

}  // namespace textmr::mr
