#pragma once

#include <string_view>

#include "io/spill_file.hpp"
#include "mr/metrics.hpp"
#include "mr/spill_buffer.hpp"
#include "mr/types.hpp"

namespace textmr::mr {

/// Sorts one sealed spill by (partition, key), applies the combiner to
/// each key group, and writes the resulting sorted run. This is the
/// support thread's workload (paper §II-C2 / §IV-A): its cost is what the
/// spill-matcher balances against map-thread production.
///
/// Records stay in the ring throughout: the sort permutes 32-byte
/// RecordRefs (comparing denormalized key prefixes), and uncombined
/// records whose ring framing matches `format` are written as verbatim
/// frame blits — no per-record serialization (DESIGN.md §8).
///
/// `combiner` may be null. Returns the run info from the writer's
/// `finish()`. Sort time goes to Op::kSort, user combine time to
/// Op::kCombine, and writing (including framing) to Op::kSpillWrite.
/// `trace`, when non-null, receives spill_sort / spill_write spans (the
/// write span carries the embedded combine time as an argument).
io::SpillRunInfo sort_and_spill(Spill& spill, Reducer* combiner,
                                std::string_view run_path,
                                std::uint32_t num_partitions,
                                io::SpillFormat format, TaskMetrics& metrics,
                                obs::TraceBuffer* trace = nullptr);

}  // namespace textmr::mr
