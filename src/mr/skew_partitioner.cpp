#include "mr/skew_partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/varint.hpp"
#include "mr/job.hpp"
#include "mr/task_runner.hpp"
#include "obs/trace.hpp"
#include "sketch/space_saving.hpp"

namespace textmr::mr {
namespace {

constexpr std::size_t kSegmentFlushBytes = 1u << 18;

/// Emit sink that feeds map output keys into the sampling sketch.
class SketchSink final : public EmitSink {
 public:
  explicit SketchSink(sketch::SpaceSaving& sketch) : sketch_(sketch) {}
  void emit(std::string_view key, std::string_view /*value*/) override {
    sketch_.offer(key);
  }

 private:
  sketch::SpaceSaving& sketch_;
};

/// Emit sink that formats reducer output exactly like a part file —
/// "key\tvalue\n" — into an owned buffer (the finalize pass for split
/// keys).
class TextSink final : public EmitSink {
 public:
  void emit(std::string_view key, std::string_view value) override {
    text_.append(key.data(), key.size());
    text_.push_back('\t');
    text_.append(value.data(), value.size());
    text_.push_back('\n');
  }
  const std::string& text() const { return text_; }

 private:
  std::string text_;
};

/// Buffered append-only part-file writer for the finalize merge.
class PartOutput {
 public:
  explicit PartOutput(const std::string& path) : path_(path) {
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) throw IoError("cannot create " + path);
    buffer_.reserve(kSegmentFlushBytes + 4096);
  }
  ~PartOutput() {
    if (file_ != nullptr) std::fclose(file_);
  }

  void write(std::string_view bytes) {
    buffer_.append(bytes.data(), bytes.size());
    bytes_ += bytes.size();
    if (buffer_.size() >= kSegmentFlushBytes) flush();
  }

  std::uint64_t close() {
    flush();
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) throw IoError("close failed for " + path_);
    return bytes_;
  }

 private:
  void flush() {
    if (buffer_.empty()) return;
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size()) {
      throw IoError("short write to " + path_);
    }
    buffer_.clear();
  }

  std::string path_;
  std::FILE* file_;
  std::string buffer_;
  std::uint64_t bytes_ = 0;
};

}  // namespace

std::uint32_t SkewPlan::num_physical() const {
  // Placed entries may share a dedicated partition (bin-packing), so the
  // physical count is the highest id any entry touches, not a sum.
  std::uint32_t physical = num_canonical;
  for (const Entry& entry : entries) {
    physical = std::max(physical, entry.first_physical + entry.num_shares);
  }
  return physical;
}

const SkewPlan::Entry* SkewPlan::find(std::string_view key) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const Entry& entry, std::string_view k) { return entry.key < k; });
  if (it == entries.end() || it->key != key) return nullptr;
  return &*it;
}

const SkewPlan::Entry* SkewPlan::entry_for_partition(
    std::uint32_t partition) const {
  if (partition < num_canonical) return nullptr;
  for (const Entry& entry : entries) {
    if (partition >= entry.first_physical &&
        partition < entry.first_physical + entry.num_shares) {
      return &entry;
    }
  }
  return nullptr;
}

SkewPlan build_skew_plan(const JobSpec& spec) {
  SkewPlan plan;
  plan.num_canonical = spec.num_reducers;
  if (!spec.skew.enabled || spec.num_reducers < 2 || !spec.mapper ||
      spec.inputs.empty()) {
    return plan;
  }

  // ---- sampling pre-pass ----------------------------------------------
  // Budget spread evenly across splits (in split order) so a multi-file
  // job samples every input, not just the first file. Single-threaded
  // and seed-free: the same spec always yields the same sketch.
  sketch::SpaceSaving sketch(std::max<std::size_t>(spec.skew.top_k, 8));
  SketchSink sink(sketch);
  Counters scratch_counters;
  const auto mapper = spec.mapper();
  mapper->begin_task(TaskInfo{0, &scratch_counters});
  const std::uint64_t per_split =
      std::max<std::uint64_t>(spec.skew.sample_bytes / spec.inputs.size(), 1);
  for (const io::InputSplit& split : spec.inputs) {
    try {
      io::LineReader reader(split);
      std::uint64_t consumed = 0;
      std::uint64_t ordinal = 0;
      while (consumed < per_split) {
        const auto line = reader.next_line();
        if (!line.has_value()) break;
        consumed += line->size() + 1;
        mapper->map(ordinal++, *line, sink);
      }
    } catch (const IoError&) {
      // Sampling is advisory: a split that cannot be read right now
      // contributes no sample, and the map phase will surface (and
      // retry) the real error through the task-attempt machinery.
      continue;
    }
  }
  if (sketch.observed() == 0) return plan;

  // ---- selection -------------------------------------------------------
  const double total = static_cast<double>(sketch.observed());
  const double reducers = static_cast<double>(spec.num_reducers);
  const bool can_split =
      static_cast<bool>(spec.combiner) ||
      static_cast<bool>(spec.skew.merge_combiner);
  // Candidates arrive ordered by decreasing count; weight is the key's
  // load in average-partition units (1.0 = one reducer's fair share).
  struct Candidate {
    SkewPlan::Entry entry;
    double weight = 0.0;
  };
  std::vector<Candidate> selected;
  double selected_weight = 0.0;
  for (const auto& candidate : sketch.top(spec.skew.top_k)) {
    const double weight =
        static_cast<double>(candidate.count) / total * reducers;
    if (weight < spec.skew.place_threshold) break;  // sorted: rest lighter
    Candidate c;
    c.entry.key = candidate.key;
    c.weight = weight;
    if (can_split && weight >= spec.skew.split_threshold) {
      c.entry.mode = SkewPlan::Mode::kSplit;
      c.entry.num_shares = std::clamp<std::uint32_t>(
          static_cast<std::uint32_t>(std::ceil(weight)), 2,
          std::max<std::uint32_t>(spec.skew.max_split_shares, 2));
    }
    selected_weight += weight;
    selected.push_back(std::move(c));
  }

  // ---- dedicated-partition assignment ----------------------------------
  // Split keys own one partition per share. Placed keys are bin-packed
  // (first-fit, decreasing weight) onto shared dedicated partitions so
  // each bin carries roughly what one canonical partition keeps after the
  // heavy keys leave — a dedicated partition full of light-but-heavy keys
  // finishes with the pack instead of dragging the wall-time median down.
  const std::uint32_t max_extra = spec.skew.max_extra_partitions != 0
                                      ? spec.skew.max_extra_partitions
                                      : spec.num_reducers;
  const double residual_per_canonical =
      std::max(reducers - selected_weight, 0.0) / reducers;
  const double bin_capacity = 1.25 * std::max(residual_per_canonical, 0.5);
  struct Bin {
    std::uint32_t id;
    double load;
  };
  std::vector<Bin> bins;
  std::uint32_t next_physical = spec.num_reducers;
  std::uint32_t budget = max_extra;
  for (Candidate& c : selected) {
    if (c.entry.mode == SkewPlan::Mode::kSplit) {
      // Budget exhaustion skips (not breaks): a lighter placed key may
      // still fit an open bin even when no whole share range does.
      if (c.entry.num_shares > budget) continue;
      c.entry.first_physical = next_physical;
      next_physical += c.entry.num_shares;
      budget -= c.entry.num_shares;
    } else {
      Bin* fit = nullptr;
      for (Bin& bin : bins) {
        if (bin.load + c.weight <= bin_capacity) {
          fit = &bin;
          break;
        }
      }
      if (fit == nullptr) {
        if (budget == 0) continue;  // stays on its hash partition
        bins.push_back(Bin{next_physical++, 0.0});
        --budget;
        fit = &bins.back();
      }
      fit->load += c.weight;
      c.entry.first_physical = fit->id;
    }
    plan.entries.push_back(std::move(c.entry));
  }

  // Plan order is bytewise key order — the partitioner binary-searches it
  // and the finalize merge walks heavy keys in sorted position.
  std::sort(plan.entries.begin(), plan.entries.end(),
            [](const SkewPlan::Entry& a, const SkewPlan::Entry& b) {
              return a.key < b.key;
            });
  return plan;
}

SkewAwarePartitioner::SkewAwarePartitioner(std::uint32_t num_canonical,
                                           const SkewPlan* plan,
                                           std::uint32_t task_id)
    : hash_(num_canonical),
      plan_(plan != nullptr && !plan->empty() ? plan : nullptr) {
  if (plan_ == nullptr) return;
  next_share_.resize(plan_->entries.size());
  for (std::size_t i = 0; i < plan_->entries.size(); ++i) {
    // Seeding the round-robin cursor by task id staggers which share
    // each map task hits first, so shares fill evenly even when most
    // tasks emit fewer records than there are shares.
    next_share_[i] = task_id % plan_->entries[i].num_shares;
  }
}

std::uint32_t SkewAwarePartitioner::operator()(std::string_view key) {
  if (plan_ == nullptr) return hash_(key);
  const auto& entries = plan_->entries;
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const SkewPlan::Entry& entry, std::string_view k) {
        return entry.key < k;
      });
  if (it == entries.end() || it->key != key) return hash_(key);
  if (it->mode == SkewPlan::Mode::kPlace) return it->first_physical;
  const std::size_t index = static_cast<std::size_t>(it - entries.begin());
  const std::uint32_t share = next_share_[index];
  next_share_[index] = share + 1 == it->num_shares ? 0 : share + 1;
  return it->first_physical + share;
}

std::filesystem::path skew_segment_path(const JobSpec& spec,
                                        std::uint32_t partition) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-r-%05u", partition);
  return spec.scratch_dir / name;
}

// ---- segment file ---------------------------------------------------------

SegmentWriter::SegmentWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) throw IoError("cannot create segment " + path);
  buffer_.reserve(kSegmentFlushBytes + 4096);
}

SegmentWriter::~SegmentWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void SegmentWriter::add(SegmentKind kind, std::string_view key,
                        std::string_view blob) {
  buffer_.push_back(static_cast<char>(kind));
  put_varint(buffer_, key.size());
  buffer_.append(key.data(), key.size());
  put_varint(buffer_, blob.size());
  buffer_.append(blob.data(), blob.size());
  if (buffer_.size() >= kSegmentFlushBytes) {
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size()) {
      throw IoError("short write to segment " + path_);
    }
    bytes_ += buffer_.size();
    buffer_.clear();
  }
}

std::uint64_t SegmentWriter::finish() {
  TEXTMR_CHECK(!finished_, "SegmentWriter::finish called twice");
  finished_ = true;
  if (!buffer_.empty()) {
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size()) {
      throw IoError("short write to segment " + path_);
    }
    bytes_ += buffer_.size();
    buffer_.clear();
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) throw IoError("close failed for segment " + path_);
  return bytes_;
}

SegmentReader::SegmentReader(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw IoError("cannot open segment " + path);
  char buf[1 << 16];
  while (true) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), file);
    if (n > 0) data_.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) throw IoError("read failed for segment " + path);
}

std::optional<SegmentEntry> SegmentReader::next() {
  if (pos_ >= data_.size()) return std::nullopt;
  const std::string_view data(data_);
  SegmentEntry entry;
  const auto kind = static_cast<std::uint8_t>(data[pos_++]);
  if (kind > static_cast<std::uint8_t>(SegmentKind::kPartial)) {
    throw FormatError("bad segment entry kind " + std::to_string(kind));
  }
  entry.kind = static_cast<SegmentKind>(kind);
  entry.key = get_length_prefixed(data, pos_);
  entry.blob = get_length_prefixed(data, pos_);
  return entry;
}

void append_partial_value(std::string& blob, std::string_view value) {
  put_length_prefixed(blob, value);
}

std::vector<std::string_view> decode_partial_values(std::string_view blob) {
  std::vector<std::string_view> values;
  std::size_t pos = 0;
  while (pos < blob.size()) {
    values.push_back(get_length_prefixed(blob, pos));
  }
  return values;
}

// ---- finalize merge --------------------------------------------------------

SkewFinalizeStats finalize_skew_outputs(const JobSpec& spec,
                                        const SkewPlan& plan,
                                        JobResult& result,
                                        obs::TraceBuffer* trace) {
  SkewFinalizeStats stats;
  obs::SpanTimer span(trace, "skew", "skew_finalize");
  const std::uint32_t canonical = plan.num_canonical;

  // Heavy entries grouped by the canonical partition their key hashes
  // to; plan.entries is key-sorted, so each home list stays key-sorted.
  std::vector<std::vector<const SkewPlan::Entry*>> by_home(canonical);
  for (const SkewPlan::Entry& entry : plan.entries) {
    by_home[hash_key(entry.key) % canonical].push_back(&entry);
  }

  // One reducer instance drives every split-key merge; combiner partials
  // are just another combine schedule, which the reducer contract
  // (associative/commutative combiners) makes equivalent to reducing the
  // raw values.
  std::unique_ptr<Reducer> reducer;
  if (spec.combiner || spec.skew.merge_combiner) {
    reducer = spec.reducer();
    reducer->begin_task(TaskInfo{0, &result.counters});
  }

  for (std::uint32_t c = 0; c < canonical; ++c) {
    const std::filesystem::path out_path = reduce_output_path(spec, c);
    const std::string tmp_path = out_path.string() + ".skewtmp";
    PartOutput out(tmp_path);
    SegmentReader canon(skew_segment_path(spec, c).string());
    const auto& heavy = by_home[c];
    std::size_t h = 0;
    std::optional<SegmentEntry> entry = canon.next();
    while (entry.has_value() || h < heavy.size()) {
      if (entry.has_value() &&
          (h == heavy.size() || entry->key < heavy[h]->key)) {
        out.write(entry->blob);
        ++stats.groups;
        entry = canon.next();
        continue;
      }
      const SkewPlan::Entry& e = *heavy[h++];
      if (e.mode == SkewPlan::Mode::kPlace) {
        // The segment may be a shared bin hosting several placed keys
        // (each with its own home partition) — copy only this key's group.
        SegmentReader seg(skew_segment_path(spec, e.first_physical).string());
        bool produced = false;
        while (const auto group = seg.next()) {
          if (group->key != e.key) continue;
          out.write(group->blob);
          produced = true;
        }
        if (produced) {
          ++stats.groups;
          ++stats.heavy_keys;
        }
        continue;
      }
      // Split key: concatenate the shares' combiner partials in share
      // order and run the real reducer once — this is the final combine
      // schedule, so the group's output bytes match a single-partition
      // run exactly.
      std::vector<std::string> blobs;
      for (std::uint32_t s = 0; s < e.num_shares; ++s) {
        SegmentReader seg(
            skew_segment_path(spec, e.first_physical + s).string());
        while (const auto group = seg.next()) {
          blobs.emplace_back(group->blob);
        }
      }
      if (blobs.empty()) continue;  // sampled key never materialized
      std::vector<std::string_view> values;
      for (const std::string& blob : blobs) {
        for (std::string_view value : decode_partial_values(blob)) {
          values.push_back(value);
        }
      }
      VectorValueStream stream(values);
      TextSink text;
      TEXTMR_CHECK(reducer != nullptr, "split plan entry without combiner");
      reducer->reduce(e.key, stream, text);
      out.write(text.text());
      ++stats.groups;
      ++stats.heavy_keys;
      ++stats.split_keys;
    }
    stats.bytes_written += out.close();
    if (std::rename(tmp_path.c_str(), out_path.string().c_str()) != 0) {
      throw IoError("rename failed for " + out_path.string());
    }
    result.outputs.push_back(out_path);
  }

  if (!spec.keep_intermediates) {
    const std::uint32_t physical = plan.num_physical();
    for (std::uint32_t p = 0; p < physical; ++p) {
      std::error_code ec;
      std::filesystem::remove(skew_segment_path(spec, p), ec);
    }
  }

  span.arg("groups", static_cast<double>(stats.groups));
  span.arg("heavy_keys", static_cast<double>(stats.heavy_keys));
  span.arg("split_keys", static_cast<double>(stats.split_keys));
  return stats;
}

// ---- bin-packing -----------------------------------------------------------

std::vector<io::InputSplit> pack_input_files(
    const std::vector<std::string>& paths, std::uint32_t num_tasks) {
  if (num_tasks == 0) throw ConfigError("pack_input_files needs >= 1 task");
  std::vector<std::uint64_t> sizes;
  sizes.reserve(paths.size());
  std::uint64_t total = 0;
  for (const std::string& path : paths) {
    std::error_code ec;
    const std::uint64_t size = std::filesystem::file_size(path, ec);
    if (ec) throw IoError("cannot stat " + path + ": " + ec.message());
    sizes.push_back(size);
    total += size;
  }
  std::vector<io::InputSplit> splits;
  if (total == 0) {
    for (const std::string& path : paths) splits.push_back({path, 0, 0});
    return splits;
  }
  // Every task targets total/num_tasks bytes; a file gets a chunk count
  // proportional to its size (at least one), so big files fan out over
  // several tasks while small files stay whole — the longest-processing-
  // time intuition of Afrati et al. without merging files into one task.
  const double target =
      static_cast<double>(total) / static_cast<double>(num_tasks);
  for (std::size_t f = 0; f < paths.size(); ++f) {
    const std::uint64_t size = sizes[f];
    const auto chunks = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::llround(static_cast<double>(size) / target)));
    const std::uint64_t base = size / chunks;
    std::uint64_t offset = 0;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      // Last chunk absorbs the rounding remainder.
      const std::uint64_t length = c + 1 == chunks ? size - offset : base;
      splits.push_back({paths[f], offset, length});
      offset += length;
    }
  }
  return splits;
}

}  // namespace textmr::mr
