#include "mr/map_task.hpp"

#include <map>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/mutex.hpp"
#include "common/stopwatch.hpp"
#include "mr/hash_combine.hpp"
#include "mr/merger.hpp"
#include "mr/skew_partitioner.hpp"
#include "mr/spill_buffer.hpp"
#include "mr/spill_sorter.hpp"

namespace textmr::mr {
namespace {

/// Sink that serializes records into the spill buffer — the tail of the
/// standard dataflow. Used directly by the frequency table's overflow /
/// flush path and by the user-facing router below.
class DirectSpillSink final : public EmitSink {
 public:
  DirectSpillSink(SpillBuffer& buffer, SkewAwarePartitioner& partitioner,
                  TaskMetrics& metrics)
      : buffer_(buffer), partitioner_(partitioner), metrics_(metrics) {}

  void emit(std::string_view key, std::string_view value) override {
    ScopedTimer timer(metrics_, Op::kEmit);
    metrics_.spill_input_records += 1;
    metrics_.spill_input_bytes += key.size() + value.size();
    buffer_.put(partitioner_(key), key, value);
  }

 private:
  SpillBuffer& buffer_;
  // Non-const: the split-key round-robin cursor advances per record.
  // With a null plan this is exactly the old HashPartitioner path.
  SkewAwarePartitioner& partitioner_;
  TaskMetrics& metrics_;
};

/// Sink that combines records on insert into the per-task shard hash
/// tables — the hash-combine analogue of DirectSpillSink. All work
/// happens on the map thread; flush time is self-accounted by the table
/// and subtracted from kEmit afterwards.
class DirectHashSink final : public EmitSink {
 public:
  DirectHashSink(HashCombineShards& table, SkewAwarePartitioner& partitioner,
                 TaskMetrics& metrics)
      : table_(table), partitioner_(partitioner), metrics_(metrics) {}

  void emit(std::string_view key, std::string_view value) override {
    ScopedTimer timer(metrics_, Op::kEmit);
    metrics_.spill_input_records += 1;
    metrics_.spill_input_bytes += key.size() + value.size();
    // The partitioner is consulted here, per record, exactly like the
    // sort path's sink — a skew plan's split-key round-robin cursor must
    // advance identically in both modes for byte-identical output.
    table_.insert(partitioner_(key), key, value);
  }

 private:
  HashCombineShards& table_;
  SkewAwarePartitioner& partitioner_;
  TaskMetrics& metrics_;
};

/// The sink handed to user map() code: counts output volume, routes
/// through frequency-buffering when active, and otherwise forwards to the
/// spill path (ring or hash table).
class EmitRouter final : public EmitSink {
 public:
  EmitRouter(EmitSink& spill_sink, freqbuf::FreqBufferController* freq,
             TaskMetrics& metrics)
      : spill_sink_(spill_sink), freq_(freq), metrics_(metrics) {}

  void emit(std::string_view key, std::string_view value) override {
    const std::uint64_t t0 = monotonic_ns();
    metrics_.map_output_records += 1;
    metrics_.map_output_bytes += key.size() + value.size();
    if (freq_ == nullptr || !freq_->offer(key, value)) {
      spill_sink_.emit(key, value);
    }
    // Total time inside emit, used by the task to subtract framework time
    // from the surrounding kMapUser interval (emit ops self-account).
    inside_emit_ns_ += monotonic_ns() - t0;
  }

  std::uint64_t inside_emit_ns() const { return inside_emit_ns_; }

 private:
  EmitSink& spill_sink_;
  freqbuf::FreqBufferController* freq_;
  TaskMetrics& metrics_;
  std::uint64_t inside_emit_ns_ = 0;
};

/// Adopts (single run) or merges (several) the task's sorted runs into
/// its final output. Shared by both combine modes — a hash-combine run
/// and a sort-spill run are byte-compatible by construction.
void finish_map_output(const MapTaskConfig& config,
                       std::vector<io::SpillRunInfo>& runs, Reducer* combiner,
                       obs::TraceBuffer* map_trace, MapTaskResult& result) {
  const std::string out_path =
      (config.scratch_dir /
       (map_attempt_prefix(config.task_id, config.attempt) + "output.run"))
          .string();
  if (runs.empty()) {
    // No output at all: write an empty run so downstream cursors work.
    io::SpillRunWriter writer(out_path, config.num_partitions,
                              config.spill_format);
    result.output = writer.finish();
  } else if (runs.size() == 1) {
    // Single run: it is already sorted and combined; adopt it (Hadoop
    // does the same rename). The hash path's no-pressure case lands here
    // every time — its finish() emits one globally sorted run.
    std::filesystem::rename(runs.front().path, out_path);
    result.output = runs.front();
    result.output.path = out_path;
    result.map_thread.merged_records += result.output.records;
    result.map_thread.merged_bytes += result.output.bytes;
  } else {
    obs::SpanTimer merge_span(map_trace, "task", "map_merge");
    merge_span.arg("runs", static_cast<double>(runs.size()));
    result.output =
        merge_runs(runs, combiner, out_path, config.num_partitions,
                   config.spill_format, result.map_thread);
    merge_span.arg("records", static_cast<double>(result.output.records));
    if (!config.keep_spill_runs) {
      for (const auto& run : runs) {
        std::error_code ec;
        std::filesystem::remove(run.path, ec);
      }
    }
  }
}

/// The hash-combine variant of run_map_task (DESIGN.md §15): no ring, no
/// support threads — the map thread drives the mapper and combines every
/// emitted record straight into the shard tables. Sorting happens at
/// flush time (radix over the key prefix), so the task's serialized work
/// drops the per-record comparison sort entirely.
MapTaskResult run_map_task_hash(const MapTaskConfig& config) {
  MapTaskResult result;
  const std::uint64_t task_start = monotonic_ns();

  const std::uint32_t trace_pid = obs::map_task_pid(config.task_id);
  obs::TraceBuffer* map_trace = nullptr;
  if (config.trace != nullptr) {
    const std::string process = "map_task_" + std::to_string(config.task_id);
    map_trace = config.trace->make_buffer(trace_pid, obs::kMapThreadTid,
                                          "map", process);
  }
  obs::SpanTimer task_span(map_trace, "task", "map_task");
  task_span.arg("split_bytes", static_cast<double>(config.split.length));
  task_span.arg("hash_combine", 1.0);

  SkewAwarePartitioner partitioner(
      config.skew_plan != nullptr ? config.skew_plan->num_canonical
                                  : config.num_partitions,
      config.skew_plan, config.task_id);
  TEXTMR_CHECK(partitioner.num_partitions() == config.num_partitions,
               "map task num_partitions disagrees with the skew plan");

  Counters map_counters;
  std::unique_ptr<Reducer> map_combiner =
      config.combiner ? config.combiner() : nullptr;
  if (map_combiner != nullptr) {
    map_combiner->begin_task(TaskInfo{config.task_id, &map_counters});
  }

  HashCombineConfig hash_config;
  hash_config.num_shards = config.hash_combine_shards;
  hash_config.watermark_bytes = config.hash_combine_watermark_bytes;
  hash_config.demote_after_flushes = config.hash_combine_demote_flushes;
  hash_config.memory_budget_bytes = config.spill_buffer_bytes;
  hash_config.num_partitions = config.num_partitions;
  hash_config.format = config.spill_format;
  HashCombineShards table(
      hash_config, map_combiner.get(),
      [&config](std::uint64_t sequence) {
        return (config.scratch_dir /
                (map_attempt_prefix(config.task_id, config.attempt) +
                 "hspill" + std::to_string(sequence) + ".run"))
            .string();
      },
      result.map_thread, map_trace);

  DirectHashSink hash_sink(table, partitioner, result.map_thread);
  std::unique_ptr<freqbuf::FreqBufferController> freq;
  if (config.freqbuf.enabled) {
    freq = std::make_unique<freqbuf::FreqBufferController>(
        config.freqbuf, config.freq_table_budget_bytes, map_combiner.get(),
        hash_sink, result.map_thread, config.node_cache, map_trace);
  }
  EmitRouter router(hash_sink, freq.get(), result.map_thread);

  std::unique_ptr<Mapper> mapper = config.mapper();
  mapper->begin_task(TaskInfo{config.task_id, &map_counters});
  io::LineReader reader(config.split);
  std::uint64_t offset = 0;
  while (true) {
    std::optional<std::string_view> line;
    {
      ScopedTimer read_timer(result.map_thread, Op::kMapRead);
      line = reader.next_line();
    }
    if (!line.has_value()) break;
    result.map_thread.input_records += 1;
    result.map_thread.input_bytes += line->size() + 1;
    if (freq != nullptr) {
      freq->set_progress(reader.fraction_consumed());
    }
    if (config.progress != nullptr) {
      config.progress->store(reader.fraction_consumed(),
                             std::memory_order_relaxed);
    }
    TEXTMR_FAILPOINT("map.user_code");
    {
      ScopedTimer map_timer(result.map_thread, Op::kMapUser);
      mapper->map(offset, *line, router);
    }
    ++offset;
  }
  if (freq != nullptr) {
    freq->finish();
    result.freq_stage_at_end = freq->stage();
    result.freq_sampling_fraction = freq->effective_sampling_fraction();
  }
  // map() wall time included everything emit() did; those ops
  // self-accounted, so subtract to leave pure user code in kMapUser.
  std::uint64_t& map_user_ns = result.map_thread.op_ns(Op::kMapUser);
  map_user_ns -= std::min(map_user_ns, router.inside_emit_ns());

  // Watermark flushes ran inside insert(), i.e. inside the kEmit scope;
  // their time self-accounted to kSort/kSpillWrite, so subtract it from
  // kEmit (the finish() flush below runs outside any emit interval).
  const std::uint64_t flush_in_emit = table.flush_ns();
  std::vector<io::SpillRunInfo> runs = table.finish();
  std::uint64_t& emit_ns = result.map_thread.op_ns(Op::kEmit);
  emit_ns -= std::min(emit_ns, flush_in_emit);

  result.spills = runs.size();
  result.pipeline_wall_ns = monotonic_ns() - task_start;

  finish_map_output(config, runs, map_combiner.get(), map_trace, result);

  result.counters += map_counters;
  result.wall_ns = monotonic_ns() - task_start;
  return result;
}

}  // namespace

std::string map_attempt_prefix(std::uint32_t task_id, std::uint32_t attempt) {
  return "map" + std::to_string(task_id) + "_a" + std::to_string(attempt) +
         "_";
}

MapTaskResult run_map_task(const MapTaskConfig& config) {
  TEXTMR_CHECK(static_cast<bool>(config.mapper), "map task needs a mapper");
  TEXTMR_CHECK(config.num_partitions >= 1, "map task needs >= 1 partition");
  std::filesystem::create_directories(config.scratch_dir);
  if (config.combine_mode == CombineMode::kHash) {
    return run_map_task_hash(config);
  }

  MapTaskResult result;
  const std::uint64_t task_start = monotonic_ns();

  // Trace rings (all null when tracing is off): one for the map thread,
  // one per support thread, one for the spill buffer's internal events.
  const std::uint32_t trace_pid = obs::map_task_pid(config.task_id);
  obs::TraceBuffer* map_trace = nullptr;
  obs::TraceBuffer* buffer_trace = nullptr;
  if (config.trace != nullptr) {
    const std::string process = "map_task_" + std::to_string(config.task_id);
    map_trace = config.trace->make_buffer(trace_pid, obs::kMapThreadTid,
                                          "map", process);
    buffer_trace = config.trace->make_buffer(
        trace_pid, obs::kSpillBufferTid, "spill-buffer");
  }
  obs::SpanTimer task_span(map_trace, "task", "map_task");
  task_span.arg("split_bytes", static_cast<double>(config.split.length));

  // Spill policy (fixed 0.8 unless the job installed the spill-matcher).
  std::unique_ptr<spillmatch::SpillPolicy> policy =
      config.spill_policy ? config.spill_policy()
                          : std::make_unique<spillmatch::FixedSpillPolicy>();

  const std::uint32_t num_support = std::max<std::uint32_t>(
      1, config.support_threads);
  SpillBuffer buffer(config.spill_buffer_bytes, policy->initial_threshold(),
                     num_support, config.spill_format, buffer_trace);
  SkewAwarePartitioner partitioner(
      config.skew_plan != nullptr ? config.skew_plan->num_canonical
                                  : config.num_partitions,
      config.skew_plan, config.task_id);
  TEXTMR_CHECK(partitioner.num_partitions() == config.num_partitions,
               "map task num_partitions disagrees with the skew plan");

  // ---- support threads ----------------------------------------------------
  // Each thread gets its own Counters and metrics (no locks on the hot
  // path); merged after join. The runs list, the spill policy and (with
  // several threads) run ordering are guarded by `shared.mu`. kMapTask
  // ranks below kSpillBuffer: a support thread consults the spill policy
  // (and re-enters the buffer to apply its threshold) while holding it.
  Counters map_counters;
  struct SupportShared {
    textmr::Mutex mu{textmr::LockRank::kMapTask, "mr.map_task.support"};
    std::map<std::uint64_t, io::SpillRunInfo> runs_by_sequence
        TEXTMR_GUARDED_BY(mu);
    std::exception_ptr error TEXTMR_GUARDED_BY(mu);
  };
  SupportShared shared;

  struct SupportState {
    Counters counters;
    TaskMetrics metrics;
    std::unique_ptr<Reducer> combiner;
  };
  std::vector<SupportState> support_states(num_support);
  std::vector<std::thread> support_pool;
  support_pool.reserve(num_support);
  for (std::uint32_t s = 0; s < num_support; ++s) {
    SupportState& state = support_states[s];
    if (config.combiner) {
      state.combiner = config.combiner();
      state.combiner->begin_task(TaskInfo{config.task_id, &state.counters});
    }
    obs::TraceBuffer* support_trace =
        config.trace != nullptr
            ? config.trace->make_buffer(trace_pid,
                                        obs::kSupportThreadTidBase + s,
                                        "support-" + std::to_string(s))
            : nullptr;
    support_pool.emplace_back([&, s, support_trace] {
      SupportState& local = support_states[s];
      try {
        while (auto spill = buffer.take()) {
          obs::SpanTimer spill_span(support_trace, "spill", "spill_consume");
          spill_span.arg("sequence", static_cast<double>(spill->sequence));
          spill_span.arg("records",
                         static_cast<double>(spill->records.size()));
          spill_span.arg("data_bytes",
                         static_cast<double>(spill->data_bytes));
          const std::uint64_t consume_start = monotonic_ns();
          const std::string run_path =
              (config.scratch_dir /
               (map_attempt_prefix(config.task_id, config.attempt) +
                "spill" + std::to_string(spill->sequence) + ".run"))
                  .string();
          auto info = sort_and_spill(*spill, local.combiner.get(), run_path,
                                     config.num_partitions,
                                     config.spill_format, local.metrics,
                                     support_trace);
          const std::uint64_t consume_ns = monotonic_ns() - consume_start;
          buffer.release(*spill, consume_ns);
          textmr::MutexLock lock(shared.mu);
          shared.runs_by_sequence.emplace(spill->sequence, std::move(info));
          if (auto timing = buffer.last_timing(); timing.has_value()) {
            const double next = policy->next_threshold(spillmatch::Timing{
                timing->produce_ns, timing->consume_ns, timing->data_bytes});
            buffer.set_threshold(next);
            // The spill-matcher's decision, with the measured T_p / T_c
            // it was derived from (paper eq. (1)).
            obs::record_instant(
                support_trace, "spill", "threshold_update", "tp_ms",
                static_cast<double>(timing->produce_ns) * 1e-6, "tc_ms",
                static_cast<double>(timing->consume_ns) * 1e-6, "threshold",
                next);
          }
        }
      } catch (...) {
        {
          textmr::MutexLock lock(shared.mu);
          if (!shared.error) shared.error = std::current_exception();
        }
        // Unblock the producer: its puts would otherwise wait forever for
        // releases that will never come. Outside the lock — abort() takes
        // the buffer's own mutex and needs no ordering with `shared.mu`.
        buffer.abort();
      }
    });
  }

  // ---- map thread (this thread) ------------------------------------------
  DirectSpillSink spill_sink(buffer, partitioner, result.map_thread);
  std::unique_ptr<Reducer> map_combiner =
      config.combiner ? config.combiner() : nullptr;
  if (map_combiner != nullptr) {
    map_combiner->begin_task(TaskInfo{config.task_id, &map_counters});
  }
  std::unique_ptr<freqbuf::FreqBufferController> freq;
  if (config.freqbuf.enabled) {
    freq = std::make_unique<freqbuf::FreqBufferController>(
        config.freqbuf, config.freq_table_budget_bytes, map_combiner.get(),
        spill_sink, result.map_thread, config.node_cache, map_trace);
  }
  EmitRouter router(spill_sink, freq.get(), result.map_thread);

  // The joins above/below make these reads safe, but the analysis (rightly)
  // cannot see a join; taking the lock is cheap and keeps the proof local.
  auto support_error = [&shared]() -> std::exception_ptr {
    textmr::MutexLock lock(shared.mu);
    return shared.error;
  };

  try {
    std::unique_ptr<Mapper> mapper = config.mapper();
    mapper->begin_task(TaskInfo{config.task_id, &map_counters});
    io::LineReader reader(config.split);
    std::uint64_t offset = 0;
    while (true) {
      std::optional<std::string_view> line;
      {
        ScopedTimer read_timer(result.map_thread, Op::kMapRead);
        line = reader.next_line();
      }
      if (!line.has_value()) break;
      result.map_thread.input_records += 1;
      result.map_thread.input_bytes += line->size() + 1;
      if (freq != nullptr) {
        freq->set_progress(reader.fraction_consumed());
      }
      if (config.progress != nullptr) {
        config.progress->store(reader.fraction_consumed(),
                               std::memory_order_relaxed);
      }
      TEXTMR_FAILPOINT("map.user_code");
      {
        ScopedTimer map_timer(result.map_thread, Op::kMapUser);
        mapper->map(offset, *line, router);
      }
      ++offset;
    }
    if (freq != nullptr) {
      freq->finish();
      result.freq_stage_at_end = freq->stage();
      result.freq_sampling_fraction = freq->effective_sampling_fraction();
    }
    // map() wall time included everything emit() did (serialization,
    // profiling, table work, buffer waits); those self-accounted, so
    // subtract them to leave pure user code in kMapUser.
    std::uint64_t& map_user_ns = result.map_thread.op_ns(Op::kMapUser);
    map_user_ns -= std::min(map_user_ns, router.inside_emit_ns());
  } catch (...) {
    // Map-side failure (user code or a support-thread abort surfacing
    // through put()): shut the pipeline down, join, and report the root
    // cause — a support thread's error wins if both failed.
    buffer.abort();
    for (auto& thread : support_pool) thread.join();
    if (auto error = support_error()) std::rethrow_exception(error);
    throw;
  }
  buffer.close();
  for (auto& thread : support_pool) thread.join();
  if (auto error = support_error()) std::rethrow_exception(error);
  for (auto& state : support_states) {
    result.support_thread += state.metrics;
    result.counters += state.counters;
  }
  std::vector<io::SpillRunInfo> runs;
  {
    textmr::MutexLock lock(shared.mu);
    runs.reserve(shared.runs_by_sequence.size());
    for (auto& [sequence, info] : shared.runs_by_sequence) {
      runs.push_back(std::move(info));
    }
  }
  result.pipeline_wall_ns = monotonic_ns() - task_start;

  // Map-thread emit time currently includes buffer-full waits; move them
  // to the idle bucket (paper Table II's "map thread idle").
  const std::uint64_t map_wait = buffer.producer_wait_ns();
  std::uint64_t& emit_ns = result.map_thread.op_ns(Op::kEmit);
  emit_ns -= std::min(emit_ns, map_wait);
  result.map_thread.op_ns(Op::kMapIdle) += map_wait;
  result.support_thread.op_ns(Op::kSupportIdle) += buffer.consumer_wait_ns();
  result.spills = buffer.spills_sealed();
  result.final_spill_threshold = buffer.threshold();

  // ---- final merge --------------------------------------------------------
  finish_map_output(config, runs, map_combiner.get(), map_trace, result);

  result.counters += map_counters;
  result.wall_ns = monotonic_ns() - task_start;
  return result;
}

}  // namespace textmr::mr
