#include "mr/engine.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/stopwatch.hpp"

namespace textmr::mr {
namespace {

void validate(const JobSpec& spec) {
  if (spec.inputs.empty()) throw ConfigError("job has no input splits");
  if (!spec.mapper) throw ConfigError("job has no mapper");
  if (!spec.reducer) throw ConfigError("job has no reducer");
  if (spec.num_reducers == 0) throw ConfigError("num_reducers must be >= 1");
  if (spec.map_parallelism == 0 || spec.reduce_parallelism == 0) {
    throw ConfigError("parallelism must be >= 1");
  }
  if (spec.support_threads == 0 || spec.support_threads > 64) {
    throw ConfigError("support_threads must be in [1, 64]");
  }
  if (spec.scratch_dir.empty()) throw ConfigError("scratch_dir is required");
  if (spec.output_dir.empty()) throw ConfigError("output_dir is required");
  if (spec.spill_threshold <= 0.0 || spec.spill_threshold >= 1.0) {
    throw ConfigError("spill_threshold must be in (0, 1)");
  }
  if (spec.freqbuf.enabled) {
    if (spec.freqbuf.table_budget_fraction <= 0.0 ||
        spec.freqbuf.table_budget_fraction >= 1.0) {
      throw ConfigError("freqbuf table_budget_fraction must be in (0, 1)");
    }
    if (!spec.combiner) {
      TEXTMR_LOG(kWarn) << "frequency-buffering without a combiner cannot "
                           "shrink intermediate data";
    }
  }
}

std::string part_name(std::uint32_t partition) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "part-r-%05u", partition);
  return buf;
}

}  // namespace

JobResult LocalEngine::run(const JobSpec& spec) {
  validate(spec);
  std::filesystem::create_directories(spec.scratch_dir);
  std::filesystem::create_directories(spec.output_dir);

  JobResult result;
  const std::uint64_t job_start = monotonic_ns();

  // Trace collector: created only when tracing is requested; tasks and
  // their threads register per-thread rings against it. Null pointers
  // everywhere otherwise — the disabled path costs one compare per hook.
  std::unique_ptr<obs::TraceCollector> collector;
  obs::TraceBuffer* driver_trace = nullptr;
  if (spec.trace.enabled) {
    collector = std::make_unique<obs::TraceCollector>(spec.trace);
    collector->set_job_name(spec.name);
    driver_trace =
        collector->make_buffer(obs::kDriverPid, 0, "driver", "driver");
  }

  // Memory split between the spill buffer and the frequent-key table
  // (total fixed, paper §V-B2).
  std::size_t spill_bytes = spec.spill_buffer_bytes;
  std::uint64_t table_budget = 0;
  if (spec.freqbuf.enabled) {
    table_budget = static_cast<std::uint64_t>(
        static_cast<double>(spec.spill_buffer_bytes) *
        spec.freqbuf.table_budget_fraction);
    spill_bytes -= static_cast<std::size_t>(table_budget);
  }

  // ---- map phase ---------------------------------------------------------
  obs::SpanTimer map_phase_span(driver_trace, "phase", "map_phase");
  const std::uint64_t map_phase_start = monotonic_ns();
  const std::uint32_t num_map_tasks =
      static_cast<std::uint32_t>(spec.inputs.size());
  std::vector<MapTaskResult> map_results(num_map_tasks);
  {
    const std::uint32_t workers =
        std::min<std::uint32_t>(spec.map_parallelism, num_map_tasks);
    // One NodeKeyCache per worker: a worker models one node's map slot,
    // so tasks it runs share the frozen frequent-key set (§III-B).
    std::vector<freqbuf::NodeKeyCache> caches(workers);
    std::atomic<std::uint32_t> next_task{0};
    std::exception_ptr first_error;
    std::mutex error_mu;

    auto worker_body = [&](std::uint32_t worker_id) {
      while (true) {
        const std::uint32_t task = next_task.fetch_add(1);
        if (task >= num_map_tasks) return;
        try {
          MapTaskConfig config;
          config.task_id = task;
          config.split = spec.inputs[task];
          config.num_partitions = spec.num_reducers;
          config.mapper = spec.mapper;
          config.combiner = spec.combiner;
          config.spill_buffer_bytes = spill_bytes;
          config.spill_format = spec.spill_format;
          config.support_threads = spec.support_threads;
          config.scratch_dir = spec.scratch_dir;
          if (spec.use_spill_matcher) {
            config.spill_policy = [] {
              return std::make_unique<spillmatch::SpillMatcher>();
            };
          } else {
            const double threshold = spec.spill_threshold;
            config.spill_policy = [threshold] {
              return std::make_unique<spillmatch::FixedSpillPolicy>(threshold);
            };
          }
          config.freqbuf = spec.freqbuf;
          config.freq_table_budget_bytes = table_budget;
          config.node_cache = &caches[worker_id];
          config.keep_spill_runs = spec.keep_intermediates;
          config.trace = collector.get();
          map_results[task] = run_map_task(config);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    };

    if (workers == 1) {
      worker_body(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (std::uint32_t w = 0; w < workers; ++w) {
        threads.emplace_back(worker_body, w);
      }
      for (auto& t : threads) t.join();
    }
    if (first_error) std::rethrow_exception(first_error);
  }
  map_phase_span.done();
  result.metrics.map_phase_wall_ns = monotonic_ns() - map_phase_start;
  result.metrics.map_tasks = num_map_tasks;

  std::vector<io::SpillRunInfo> map_outputs;
  map_outputs.reserve(num_map_tasks);
  for (auto& task_result : map_results) {
    map_outputs.push_back(task_result.output);
    result.metrics.work += task_result.map_thread;
    result.metrics.work += task_result.support_thread;
    result.metrics.map_work += task_result.map_thread;
    result.metrics.support_work += task_result.support_thread;
    result.counters += task_result.counters;
    result.metrics.map_thread_wall_ns += task_result.pipeline_wall_ns;
    result.metrics.support_thread_wall_ns += task_result.pipeline_wall_ns;
    result.metrics.map_thread_idle_ns +=
        task_result.map_thread.op_ns(Op::kMapIdle);
    result.metrics.support_thread_idle_ns +=
        task_result.support_thread.op_ns(Op::kSupportIdle);
    result.map_tasks.push_back(JobResult::MapTaskSummary{
        task_result.wall_ns, task_result.pipeline_wall_ns,
        task_result.map_thread.op_ns(Op::kMapIdle),
        task_result.support_thread.op_ns(Op::kSupportIdle),
        task_result.spills, task_result.final_spill_threshold,
        task_result.freq_sampling_fraction});
  }

  // ---- reduce phase --------------------------------------------------------
  obs::SpanTimer reduce_phase_span(driver_trace, "phase", "reduce_phase");
  const std::uint64_t reduce_phase_start = monotonic_ns();
  std::vector<ReduceTaskResult> reduce_results(spec.num_reducers);
  {
    std::atomic<std::uint32_t> next_partition{0};
    std::exception_ptr first_error;
    std::mutex error_mu;

    auto worker_body = [&] {
      while (true) {
        const std::uint32_t partition = next_partition.fetch_add(1);
        if (partition >= spec.num_reducers) return;
        try {
          ReduceTaskConfig config;
          config.partition = partition;
          config.map_outputs = map_outputs;
          config.reducer = spec.reducer;
          config.grouping = spec.grouping;
          config.spill_format = spec.spill_format;
          config.output_path = spec.output_dir / part_name(partition);
          config.trace = collector.get();
          reduce_results[partition] = run_reduce_task(config);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    };

    const std::uint32_t workers =
        std::min<std::uint32_t>(spec.reduce_parallelism, spec.num_reducers);
    if (workers == 1) {
      worker_body();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (std::uint32_t w = 0; w < workers; ++w) {
        threads.emplace_back(worker_body);
      }
      for (auto& t : threads) t.join();
    }
    if (first_error) std::rethrow_exception(first_error);
  }
  reduce_phase_span.done();
  result.metrics.reduce_phase_wall_ns = monotonic_ns() - reduce_phase_start;
  result.metrics.reduce_tasks = spec.num_reducers;

  for (auto& reduce_result : reduce_results) {
    result.outputs.push_back(reduce_result.output_path);
    result.metrics.work += reduce_result.metrics;
    result.metrics.reduce_work += reduce_result.metrics;
    result.counters += reduce_result.counters;
  }

  if (!spec.keep_intermediates) {
    for (const auto& run : map_outputs) {
      std::error_code ec;
      std::filesystem::remove(run.path, ec);
    }
  }

  result.metrics.job_wall_ns = monotonic_ns() - job_start;
  if (collector != nullptr) result.trace = collector->finish();
  return result;
}

}  // namespace textmr::mr
