#include "mr/engine.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/mutex.hpp"
#include "common/stopwatch.hpp"

namespace textmr::mr {
namespace {

void validate(const JobSpec& spec) {
  if (spec.inputs.empty()) throw ConfigError("job has no input splits");
  if (!spec.mapper) throw ConfigError("job has no mapper");
  if (!spec.reducer) throw ConfigError("job has no reducer");
  if (spec.num_reducers == 0) throw ConfigError("num_reducers must be >= 1");
  if (spec.map_parallelism == 0 || spec.reduce_parallelism == 0) {
    throw ConfigError("parallelism must be >= 1");
  }
  if (spec.support_threads == 0 || spec.support_threads > 64) {
    throw ConfigError("support_threads must be in [1, 64]");
  }
  if (spec.max_task_attempts == 0) {
    throw ConfigError("max_task_attempts must be >= 1");
  }
  if (spec.scratch_dir.empty()) throw ConfigError("scratch_dir is required");
  if (spec.output_dir.empty()) throw ConfigError("output_dir is required");
  if (spec.spill_threshold <= 0.0 || spec.spill_threshold >= 1.0) {
    throw ConfigError("spill_threshold must be in (0, 1)");
  }
  if (spec.freqbuf.enabled) {
    if (spec.freqbuf.table_budget_fraction <= 0.0 ||
        spec.freqbuf.table_budget_fraction >= 1.0) {
      throw ConfigError("freqbuf table_budget_fraction must be in (0, 1)");
    }
    if (!spec.combiner) {
      TEXTMR_LOG(kWarn) << "frequency-buffering without a combiner cannot "
                           "shrink intermediate data";
    }
  }
}

std::string part_name(std::uint32_t partition) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "part-r-%05u", partition);
  return buf;
}

/// Message of the in-flight exception; call only inside a catch block.
std::string current_error_message() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

/// Whether the in-flight exception is worth a re-execution. Transient
/// failures (I/O, user-code throws) are; InternalError (invariant bug)
/// and ConfigError (bad spec) are deterministic and fail the job
/// immediately with their original type. Call only inside a catch block.
bool is_retryable() {
  try {
    throw;
  } catch (const InternalError&) {
    return false;
  } catch (const ConfigError&) {
    return false;
  } catch (...) {
    return true;
  }
}

/// Deletes everything in `dir` whose filename starts with `prefix` — the
/// scratch files of one dead task attempt. Best-effort: cleanup must
/// never mask the task's own error.
void remove_attempt_files(const std::filesystem::path& dir,
                          const std::string& prefix) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0) {
      std::error_code rm_ec;
      std::filesystem::remove(entry.path(), rm_ec);
    }
  }
}

void backoff_sleep(std::uint32_t base_ms, std::uint32_t failed_attempt) {
  if (base_ms == 0) return;
  const std::uint64_t ms = static_cast<std::uint64_t>(base_ms)
                           << std::min<std::uint32_t>(failed_attempt, 10);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Shared state of the retry scheduler: attempt accounting plus the
/// first permanent task failure (which dooms the job).
struct RetryState {
  std::uint32_t max_attempts;
  std::uint32_t backoff_base_ms;
  std::atomic<std::uint64_t> task_attempts{0};
  std::atomic<std::uint64_t> tasks_retried{0};
  std::atomic<bool> job_failed{false};
  textmr::Mutex error_mu{textmr::LockRank::kEngine, "mr.engine.retry_error"};
  std::exception_ptr job_error TEXTMR_GUARDED_BY(error_mu);

  void record_permanent_failure(const std::string& what) {
    record_permanent_error(std::make_exception_ptr(TaskFailedError(what)));
  }

  void record_permanent_error(std::exception_ptr error) {
    textmr::MutexLock lock(error_mu);
    if (!job_error) job_error = std::move(error);
    job_failed.store(true, std::memory_order_relaxed);
  }

  // Annotation-surfaced fix (PR 3): this used to read job_error unlocked,
  // racing a straggler worker's record_permanent_error() — benign-looking
  // because the engine joins first, but the phase barrier only covers the
  // phase's own workers, and the unlocked read was unprovable anyway.
  void rethrow_if_failed() {
    std::exception_ptr error;
    {
      textmr::MutexLock lock(error_mu);
      error = job_error;
    }
    if (error) std::rethrow_exception(error);
  }
};

/// Runs one task with bounded retries. `run_attempt(attempt)` executes
/// the task; `cleanup_attempt(attempt)` removes a dead attempt's files.
/// Returns false when the task failed permanently (the job is doomed and
/// the caller's worker should stop claiming tasks).
template <typename RunAttempt, typename CleanupAttempt>
bool run_with_retries(RetryState& retry, const char* kind, std::uint32_t id,
                      obs::TraceCollector* collector,
                      obs::TraceBuffer** worker_trace, std::uint32_t pid,
                      std::uint32_t tid, const std::string& worker_name,
                      RunAttempt&& run_attempt,
                      CleanupAttempt&& cleanup_attempt) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    retry.task_attempts.fetch_add(1, std::memory_order_relaxed);
    try {
      run_attempt(attempt);
      return true;
    } catch (...) {
      const std::string cause = current_error_message();
      cleanup_attempt(attempt);
      if (!is_retryable()) {
        // Invariant/contract violations are deterministic: re-running
        // cannot succeed, so propagate the original typed error at once.
        retry.record_permanent_error(std::current_exception());
        return false;
      }
      if (attempt + 1 >= retry.max_attempts) {
        retry.record_permanent_failure(
            std::string(kind) + " task " + std::to_string(id) +
            " failed after " + std::to_string(attempt + 1) +
            (attempt == 0 ? " attempt: " : " attempts: ") + cause);
        return false;
      }
      if (attempt == 0) {
        retry.tasks_retried.fetch_add(1, std::memory_order_relaxed);
      }
      TEXTMR_LOG(kWarn) << kind << " task " << id << " attempt " << attempt
                        << " failed (" << cause << "); retrying";
      if (collector != nullptr && *worker_trace == nullptr) {
        *worker_trace = collector->make_buffer(pid, tid, worker_name);
      }
      obs::record_instant(*worker_trace, "retry", "task_retry", "task",
                          static_cast<double>(id), "failed_attempt",
                          static_cast<double>(attempt));
      backoff_sleep(retry.backoff_base_ms, attempt);
    }
  }
}

}  // namespace

JobResult LocalEngine::run(const JobSpec& spec) {
  validate(spec);
  std::filesystem::create_directories(spec.scratch_dir);
  std::filesystem::create_directories(spec.output_dir);

  JobResult result;
  const std::uint64_t job_start = monotonic_ns();

  // Trace collector: created only when tracing is requested; tasks and
  // their threads register per-thread rings against it. Null pointers
  // everywhere otherwise — the disabled path costs one compare per hook.
  std::unique_ptr<obs::TraceCollector> collector;
  obs::TraceBuffer* driver_trace = nullptr;
  if (spec.trace.enabled) {
    collector = std::make_unique<obs::TraceCollector>(spec.trace);
    collector->set_job_name(spec.name);
    driver_trace =
        collector->make_buffer(obs::kDriverPid, 0, "driver", "driver");
  }

  // Memory split between the spill buffer and the frequent-key table
  // (total fixed, paper §V-B2).
  std::size_t spill_bytes = spec.spill_buffer_bytes;
  std::uint64_t table_budget = 0;
  if (spec.freqbuf.enabled) {
    table_budget = static_cast<std::uint64_t>(
        static_cast<double>(spec.spill_buffer_bytes) *
        spec.freqbuf.table_budget_fraction);
    spill_bytes -= static_cast<std::size_t>(table_budget);
  }

  // Task recovery (DESIGN.md §6): a failed attempt is cleaned up and the
  // task re-run under a fresh attempt id; the worker keeps draining the
  // task queue. Only a task that exhausts max_task_attempts dooms the
  // job, at which point workers stop claiming new tasks.
  RetryState retry;
  retry.max_attempts = spec.max_task_attempts;
  retry.backoff_base_ms = spec.retry_backoff_base_ms;

  // ---- map phase ---------------------------------------------------------
  obs::SpanTimer map_phase_span(driver_trace, "phase", "map_phase");
  const std::uint64_t map_phase_start = monotonic_ns();
  const std::uint32_t num_map_tasks =
      static_cast<std::uint32_t>(spec.inputs.size());
  std::vector<MapTaskResult> map_results(num_map_tasks);
  {
    const std::uint32_t workers =
        std::min<std::uint32_t>(spec.map_parallelism, num_map_tasks);
    // One NodeKeyCache per worker: a worker models one node's map slot,
    // so tasks it runs share the frozen frequent-key set (§III-B).
    std::vector<freqbuf::NodeKeyCache> caches(workers);
    std::atomic<std::uint32_t> next_task{0};

    auto worker_body = [&](std::uint32_t worker_id) {
      obs::TraceBuffer* worker_trace = nullptr;  // created on first retry
      while (!retry.job_failed.load(std::memory_order_relaxed)) {
        const std::uint32_t task = next_task.fetch_add(1);
        if (task >= num_map_tasks) return;
        const bool ok = run_with_retries(
            retry, "map", task, collector.get(), &worker_trace,
            obs::kDriverPid, obs::kMapWorkerTidBase + worker_id,
            "map-worker-" + std::to_string(worker_id),
            [&](std::uint32_t attempt) {
              MapTaskConfig config;
              config.task_id = task;
              config.attempt = attempt;
              config.split = spec.inputs[task];
              config.num_partitions = spec.num_reducers;
              config.mapper = spec.mapper;
              config.combiner = spec.combiner;
              config.spill_buffer_bytes = spill_bytes;
              config.spill_format = spec.spill_format;
              config.support_threads = spec.support_threads;
              config.scratch_dir = spec.scratch_dir;
              if (spec.use_spill_matcher) {
                config.spill_policy = [] {
                  return std::make_unique<spillmatch::SpillMatcher>();
                };
              } else {
                const double threshold = spec.spill_threshold;
                config.spill_policy = [threshold] {
                  return std::make_unique<spillmatch::FixedSpillPolicy>(
                      threshold);
                };
              }
              config.freqbuf = spec.freqbuf;
              config.freq_table_budget_bytes = table_budget;
              config.node_cache = &caches[worker_id];
              config.keep_spill_runs = spec.keep_intermediates;
              config.trace = collector.get();
              map_results[task] = run_map_task(config);
            },
            [&](std::uint32_t attempt) {
              remove_attempt_files(spec.scratch_dir,
                                   map_attempt_prefix(task, attempt));
            });
        if (!ok) return;
      }
    };

    if (workers == 1) {
      worker_body(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (std::uint32_t w = 0; w < workers; ++w) {
        threads.emplace_back(worker_body, w);
      }
      for (auto& t : threads) t.join();
    }
    retry.rethrow_if_failed();
  }
  map_phase_span.done();
  result.metrics.map_phase_wall_ns = monotonic_ns() - map_phase_start;
  result.metrics.map_tasks = num_map_tasks;

  std::vector<io::SpillRunInfo> map_outputs;
  map_outputs.reserve(num_map_tasks);
  for (auto& task_result : map_results) {
    map_outputs.push_back(task_result.output);
    result.metrics.work += task_result.map_thread;
    result.metrics.work += task_result.support_thread;
    result.metrics.map_work += task_result.map_thread;
    result.metrics.support_work += task_result.support_thread;
    result.counters += task_result.counters;
    result.metrics.map_thread_wall_ns += task_result.pipeline_wall_ns;
    result.metrics.support_thread_wall_ns += task_result.pipeline_wall_ns;
    result.metrics.map_thread_idle_ns +=
        task_result.map_thread.op_ns(Op::kMapIdle);
    result.metrics.support_thread_idle_ns +=
        task_result.support_thread.op_ns(Op::kSupportIdle);
    result.map_tasks.push_back(JobResult::MapTaskSummary{
        task_result.wall_ns, task_result.pipeline_wall_ns,
        task_result.map_thread.op_ns(Op::kMapIdle),
        task_result.support_thread.op_ns(Op::kSupportIdle),
        task_result.spills, task_result.final_spill_threshold,
        task_result.freq_sampling_fraction});
  }

  // ---- reduce phase --------------------------------------------------------
  obs::SpanTimer reduce_phase_span(driver_trace, "phase", "reduce_phase");
  const std::uint64_t reduce_phase_start = monotonic_ns();
  std::vector<ReduceTaskResult> reduce_results(spec.num_reducers);
  {
    std::atomic<std::uint32_t> next_partition{0};

    auto worker_body = [&](std::uint32_t worker_id) {
      obs::TraceBuffer* worker_trace = nullptr;  // created on first retry
      while (!retry.job_failed.load(std::memory_order_relaxed)) {
        const std::uint32_t partition = next_partition.fetch_add(1);
        if (partition >= spec.num_reducers) return;
        const std::filesystem::path output_path =
            spec.output_dir / part_name(partition);
        const bool ok = run_with_retries(
            retry, "reduce", partition, collector.get(), &worker_trace,
            obs::kDriverPid, obs::kReduceWorkerTidBase + worker_id,
            "reduce-worker-" + std::to_string(worker_id),
            [&](std::uint32_t attempt) {
              ReduceTaskConfig config;
              config.partition = partition;
              config.attempt = attempt;
              config.map_outputs = map_outputs;
              config.reducer = spec.reducer;
              config.grouping = spec.grouping;
              config.spill_format = spec.spill_format;
              config.output_path = output_path;
              config.trace = collector.get();
              reduce_results[partition] = run_reduce_task(config);
            },
            [&](std::uint32_t attempt) {
              std::error_code ec;
              std::filesystem::remove(
                  reduce_attempt_tmp_path(output_path, attempt), ec);
            });
        if (!ok) return;
      }
    };

    const std::uint32_t workers =
        std::min<std::uint32_t>(spec.reduce_parallelism, spec.num_reducers);
    if (workers == 1) {
      worker_body(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (std::uint32_t w = 0; w < workers; ++w) {
        threads.emplace_back(worker_body, w);
      }
      for (auto& t : threads) t.join();
    }
    retry.rethrow_if_failed();
  }
  reduce_phase_span.done();
  result.metrics.reduce_phase_wall_ns = monotonic_ns() - reduce_phase_start;
  result.metrics.reduce_tasks = spec.num_reducers;
  result.metrics.task_attempts =
      retry.task_attempts.load(std::memory_order_relaxed);
  result.metrics.tasks_retried =
      retry.tasks_retried.load(std::memory_order_relaxed);

  for (auto& reduce_result : reduce_results) {
    result.outputs.push_back(reduce_result.output_path);
    result.metrics.work += reduce_result.metrics;
    result.metrics.reduce_work += reduce_result.metrics;
    result.counters += reduce_result.counters;
  }

  if (!spec.keep_intermediates) {
    for (const auto& run : map_outputs) {
      std::error_code ec;
      std::filesystem::remove(run.path, ec);
    }
  }

  result.metrics.job_wall_ns = monotonic_ns() - job_start;
  if (collector != nullptr) result.trace = collector->finish();
  return result;
}

}  // namespace textmr::mr
