#include "mr/engine.hpp"

#include <atomic>
#include <thread>

#include "common/stopwatch.hpp"
#include "mr/task_runner.hpp"

namespace textmr::mr {

JobResult LocalEngine::run(const JobSpec& spec) {
  validate_job(spec);
  std::filesystem::create_directories(spec.scratch_dir);
  std::filesystem::create_directories(spec.output_dir);

  JobResult result;
  const std::uint64_t job_start = monotonic_ns();

  // Trace collector: created only when tracing is requested; tasks and
  // their threads register per-thread rings against it. Null pointers
  // everywhere otherwise — the disabled path costs one compare per hook.
  std::unique_ptr<obs::TraceCollector> collector;
  obs::TraceBuffer* driver_trace = nullptr;
  if (spec.trace.enabled) {
    collector = std::make_unique<obs::TraceCollector>(spec.trace);
    collector->set_job_name(spec.name);
    driver_trace =
        collector->make_buffer(obs::kDriverPid, 0, "driver", "driver");
  }

  // Memory split between the spill buffer and the frequent-key table
  // (total fixed, paper §V-B2).
  const MemorySplit mem = split_memory(spec);

  // Skew plan (DESIGN.md §12): driver-side sampling pre-pass; empty plan
  // (or disabled) means plain hash partitioning everywhere below.
  const SkewPlan skew_plan = build_skew_plan(spec);
  const SkewPlan* plan = skew_plan.empty() ? nullptr : &skew_plan;
  const std::uint32_t num_physical_reducers =
      plan != nullptr ? skew_plan.num_physical() : spec.num_reducers;
  if (plan != nullptr) {
    std::uint64_t split_entries = 0;
    for (const auto& entry : skew_plan.entries) {
      if (entry.mode == SkewPlan::Mode::kSplit) ++split_entries;
    }
    obs::record_instant(driver_trace, "skew", "skew_plan", "heavy_keys",
                        static_cast<double>(skew_plan.entries.size()),
                        "split_keys", static_cast<double>(split_entries),
                        "physical_partitions",
                        static_cast<double>(num_physical_reducers));
  }

  // Task recovery (DESIGN.md §6): a failed attempt is cleaned up and the
  // task re-run under a fresh attempt id; the worker keeps draining the
  // task queue. Only a task that exhausts max_task_attempts dooms the
  // job, at which point workers stop claiming new tasks.
  RetryState retry;
  retry.max_attempts = spec.max_task_attempts;
  retry.backoff_base_ms = spec.retry_backoff_base_ms;

  // ---- map phase ---------------------------------------------------------
  obs::SpanTimer map_phase_span(driver_trace, "phase", "map_phase");
  const std::uint64_t map_phase_start = monotonic_ns();
  const std::uint32_t num_map_tasks =
      static_cast<std::uint32_t>(spec.inputs.size());
  std::vector<MapTaskResult> map_results(num_map_tasks);
  {
    const std::uint32_t workers =
        std::min<std::uint32_t>(spec.map_parallelism, num_map_tasks);
    // One NodeKeyCache per worker: a worker models one node's map slot,
    // so tasks it runs share the frozen frequent-key set (§III-B).
    std::vector<freqbuf::NodeKeyCache> caches(workers);
    std::atomic<std::uint32_t> next_task{0};

    auto worker_body = [&](std::uint32_t worker_id) {
      obs::TraceBuffer* worker_trace = nullptr;  // created on first retry
      while (!retry.job_failed.load(std::memory_order_relaxed)) {
        const std::uint32_t task = next_task.fetch_add(1);
        if (task >= num_map_tasks) return;
        const bool ok = run_with_retries(
            retry, "map", task, collector.get(), &worker_trace,
            obs::kDriverPid, obs::kMapWorkerTidBase + worker_id,
            "map-worker-" + std::to_string(worker_id),
            [&](std::uint32_t attempt) {
              map_results[task] =
                  run_map_task(make_map_task_config(spec, mem, task, attempt,
                                                    &caches[worker_id],
                                                    collector.get(), plan));
            },
            [&](std::uint32_t attempt) {
              cleanup_map_attempt(spec, task, attempt);
            });
        if (!ok) return;
      }
    };

    if (workers == 1) {
      worker_body(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (std::uint32_t w = 0; w < workers; ++w) {
        threads.emplace_back(worker_body, w);
      }
      for (auto& t : threads) t.join();
    }
    retry.rethrow_if_failed();
  }
  map_phase_span.done();
  result.metrics.map_phase_wall_ns = monotonic_ns() - map_phase_start;
  result.metrics.map_tasks = num_map_tasks;

  std::vector<io::SpillRunInfo> map_outputs;
  map_outputs.reserve(num_map_tasks);
  for (auto& task_result : map_results) {
    map_outputs.push_back(task_result.output);
    fold_map_result(task_result, result);
  }

  // ---- reduce phase --------------------------------------------------------
  obs::SpanTimer reduce_phase_span(driver_trace, "phase", "reduce_phase");
  const std::uint64_t reduce_phase_start = monotonic_ns();
  std::vector<ReduceTaskResult> reduce_results(num_physical_reducers);
  {
    std::atomic<std::uint32_t> next_partition{0};

    auto worker_body = [&](std::uint32_t worker_id) {
      obs::TraceBuffer* worker_trace = nullptr;  // created on first retry
      while (!retry.job_failed.load(std::memory_order_relaxed)) {
        const std::uint32_t partition = next_partition.fetch_add(1);
        if (partition >= num_physical_reducers) return;
        const std::filesystem::path output_path =
            reduce_task_output_path(spec, plan, partition);
        const bool ok = run_with_retries(
            retry, "reduce", partition, collector.get(), &worker_trace,
            obs::kDriverPid, obs::kReduceWorkerTidBase + worker_id,
            "reduce-worker-" + std::to_string(worker_id),
            [&](std::uint32_t attempt) {
              reduce_results[partition] = run_reduce_task(
                  make_reduce_task_config(spec, partition, attempt,
                                          map_outputs, collector.get(),
                                          plan));
            },
            [&](std::uint32_t attempt) {
              cleanup_reduce_attempt(output_path, attempt);
            });
        if (!ok) return;
      }
    };

    const std::uint32_t workers = std::min<std::uint32_t>(
        spec.reduce_parallelism, num_physical_reducers);
    if (workers == 1) {
      worker_body(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (std::uint32_t w = 0; w < workers; ++w) {
        threads.emplace_back(worker_body, w);
      }
      for (auto& t : threads) t.join();
    }
    retry.rethrow_if_failed();
  }
  reduce_phase_span.done();
  result.metrics.reduce_phase_wall_ns = monotonic_ns() - reduce_phase_start;
  result.metrics.reduce_tasks = num_physical_reducers;
  result.metrics.task_attempts =
      retry.task_attempts.load(std::memory_order_relaxed);
  result.metrics.tasks_retried =
      retry.tasks_retried.load(std::memory_order_relaxed);

  for (auto& reduce_result : reduce_results) {
    fold_reduce_result(reduce_result, result, /*include_output=*/plan == nullptr);
  }
  note_partition_bytes(result, driver_trace);
  if (plan != nullptr) {
    finalize_skew_outputs(spec, skew_plan, result, driver_trace);
  }

  if (!spec.keep_intermediates) {
    for (const auto& run : map_outputs) {
      std::error_code ec;
      std::filesystem::remove(run.path, ec);
    }
  }

  result.metrics.job_wall_ns = monotonic_ns() - job_start;
  if (collector != nullptr) {
    result.trace = collector->finish();
    result.metrics.trace_ring_dropped = result.trace.dropped_events;
  }
  return result;
}

}  // namespace textmr::mr
