#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "io/spill_file.hpp"
#include "mr/metrics.hpp"
#include "mr/types.hpp"
#include "obs/trace.hpp"

namespace textmr::mr {

/// How reduce input is grouped. kSorted is the MapReduce model the paper
/// assumes ("we assume that sorting is a required part of the MapReduce
/// model", §II-A): reduce sees keys in sorted order. kHash is the §VII
/// future-work alternative for reducers that only need grouping.
enum class Grouping : std::uint8_t { kSorted, kHash };

/// What a reduce task writes (DESIGN.md §12). kPartFile is the normal
/// "key \t value \n" part file. The segment kinds exist for skew mode,
/// where every physical reduce task writes a scratch segment file the
/// finalize merge later folds back into canonical part files:
/// kSegmentText runs the real reducer and stores each group's part-file
/// text; kSegmentPartial (split shares) runs a combiner and stores its
/// partial values.
enum class ReduceOutputKind : std::uint8_t {
  kPartFile,
  kSegmentText,
  kSegmentPartial,
};

/// One (run, partition) worth of shuffle input from a pluggable source.
struct ShuffleFetchResult {
  std::string bytes;      // raw frames, same layout as read_partition()
  bool over_wire = false; // true when a remote shuffle server served it
};

/// Pluggable shuffle source: (run index, run, partition) → the
/// partition's raw frame bytes. Cluster workers inject a network
/// fetcher (pull from the owning worker's shuffle server, with a
/// shared-filesystem fallback); when unset the task reads the run file
/// locally — byte-identical input either way.
using ShuffleFetcher = std::function<ShuffleFetchResult(
    std::uint32_t run_index, const io::SpillRunInfo& run,
    std::uint32_t partition)>;

struct ReduceTaskConfig {
  std::uint32_t partition = 0;
  /// Execution attempt (0-based). The task writes to an attempt-suffixed
  /// temp file and renames it onto `output_path` only on success, so a
  /// failed attempt never leaves a partial part file behind.
  std::uint32_t attempt = 0;
  std::vector<io::SpillRunInfo> map_outputs;  // one per map task
  /// Optional shuffle source override (see ShuffleFetcher above).
  ShuffleFetcher fetch;
  ReducerFactory reducer;
  Grouping grouping = Grouping::kSorted;
  io::SpillFormat spill_format = io::SpillFormat::kCompactVarint;
  /// Part file in kPartFile mode, segment file otherwise.
  std::filesystem::path output_path;
  ReduceOutputKind output_kind = ReduceOutputKind::kPartFile;

  /// When non-null the task registers a trace ring and records its
  /// shuffle / merge / reduce phases.
  obs::TraceCollector* trace = nullptr;
  /// Overrides the trace ring's process name (default "reduce_<p>").
  /// Skew mode labels dedicated partitions "reduce_<p> key=<key>" so
  /// the analyzer can attribute stragglers to heavy keys.
  std::string trace_process_name;
};

struct ReduceTaskResult {
  std::filesystem::path output_path;
  TaskMetrics metrics;
  Counters counters;
  std::uint64_t wall_ns = 0;
};

/// Temp file one reduce attempt writes before the commit rename — e.g.
/// "part-r-00002.a1.tmp". Shared by the task and the engine's
/// failed-attempt cleanup.
std::filesystem::path reduce_attempt_tmp_path(
    const std::filesystem::path& output_path, std::uint32_t attempt);

/// Runs one reduce task: fetches its partition from every map output
/// (shuffle), merges/groups, applies reduce(), writes the part file to an
/// attempt temp name and renames it into place on success.
ReduceTaskResult run_reduce_task(const ReduceTaskConfig& config);

}  // namespace textmr::mr
