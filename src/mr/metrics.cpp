#include "mr/metrics.hpp"

namespace textmr::mr {

const char* op_name(Op op) {
  switch (op) {
    case Op::kMapRead: return "map_read";
    case Op::kMapUser: return "map_user";
    case Op::kEmit: return "emit";
    case Op::kProfile: return "profile";
    case Op::kFreqTable: return "freq_table";
    case Op::kSort: return "sort";
    case Op::kCombine: return "combine";
    case Op::kSpillWrite: return "spill_write";
    case Op::kMerge: return "merge";
    case Op::kMergeCombine: return "merge_combine";
    case Op::kShuffle: return "shuffle";
    case Op::kReduceMerge: return "reduce_merge";
    case Op::kReduceUser: return "reduce_user";
    case Op::kOutputWrite: return "output_write";
    case Op::kMapIdle: return "map_idle";
    case Op::kSupportIdle: return "support_idle";
    case Op::kNumOps: break;
  }
  return "unknown";
}

TaskMetrics& TaskMetrics::operator+=(const TaskMetrics& other) {
  for (std::size_t i = 0; i < kNumOps; ++i) ns[i] += other.ns[i];
  input_records += other.input_records;
  input_bytes += other.input_bytes;
  map_output_records += other.map_output_records;
  map_output_bytes += other.map_output_bytes;
  freq_hits += other.freq_hits;
  freq_flushes += other.freq_flushes;
  hash_combine_hits += other.hash_combine_hits;
  hash_combine_flushes += other.hash_combine_flushes;
  hash_combine_demotions += other.hash_combine_demotions;
  spill_input_records += other.spill_input_records;
  spill_input_bytes += other.spill_input_bytes;
  spilled_records += other.spilled_records;
  spilled_bytes += other.spilled_bytes;
  spill_count += other.spill_count;
  merged_records += other.merged_records;
  merged_bytes += other.merged_bytes;
  shuffled_bytes += other.shuffled_bytes;
  shuffled_wire_bytes += other.shuffled_wire_bytes;
  reduce_input_records += other.reduce_input_records;
  reduce_groups += other.reduce_groups;
  output_records += other.output_records;
  output_bytes += other.output_bytes;
  return *this;
}

std::uint64_t TaskMetrics::total_ns(bool include_idle) const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    if (!include_idle && (op == Op::kMapIdle || op == Op::kSupportIdle)) {
      continue;
    }
    total += ns[i];
  }
  return total;
}

std::uint64_t TaskMetrics::user_ns() const {
  return op_ns(Op::kMapUser) + op_ns(Op::kCombine) +
         op_ns(Op::kMergeCombine) + op_ns(Op::kReduceUser);
}

std::uint64_t TaskMetrics::abstraction_ns(bool include_idle) const {
  return total_ns(include_idle) - user_ns();
}

}  // namespace textmr::mr
