#include "mr/hash_combine.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/stopwatch.hpp"
#include "mr/spill_buffer.hpp"
#include "mr/spill_sorter.hpp"

namespace textmr::mr {
namespace {

// Value chain block layout inside Shard::values (offset-addressed so heap
// growth never invalidates a reference): [u32 next][u32 size][u32 cap]
// [cap bytes]. Offsets rather than pointers are the point — the decoder-
// bounds and view-escape rules in tools/check treat pointers held across
// arena growth as errors (see tools/check/corpus/hash_combine.cpp).
constexpr std::size_t kBlockHeader = 12;

inline std::uint32_t load_u32(const std::vector<char>& heap,
                              std::size_t offset) {
  TEXTMR_CHECK(offset + sizeof(std::uint32_t) <= heap.size(),
               "value-heap offset out of bounds");
  std::uint32_t v;
  std::memcpy(&v, heap.data() + offset, sizeof(v));
  return v;
}

inline void store_u32(std::vector<char>& heap, std::size_t offset,
                      std::uint32_t v) {
  TEXTMR_CHECK(offset + sizeof(v) <= heap.size(),
               "value-heap offset out of bounds");
  std::memcpy(heap.data() + offset, &v, sizeof(v));
}

inline std::string_view block_value(const std::vector<char>& heap,
                                    std::uint32_t offset) {
  const std::uint32_t size = load_u32(heap, offset + 4);
  TEXTMR_CHECK(offset + kBlockHeader + size <= heap.size(),
               "value-heap block overruns the heap");
  return {heap.data() + offset + kBlockHeader, size};
}

}  // namespace

HashCombineShards::HashCombineShards(
    const HashCombineConfig& config, Reducer* combiner,
    std::function<std::string(std::uint64_t)> next_run_path,
    TaskMetrics& metrics, obs::TraceBuffer* trace)
    : config_(config),
      combiner_(combiner),
      next_run_path_(std::move(next_run_path)),
      metrics_(metrics),
      trace_(trace) {
  TEXTMR_CHECK(config_.num_shards >= 1 && config_.num_shards <= 64,
               "hash-combine shard count out of range");
  watermark_ = config_.watermark_bytes != 0
                   ? config_.watermark_bytes
                   : std::max<std::size_t>(
                         32u << 10,
                         config_.memory_budget_bytes / config_.num_shards);
  shards_.resize(config_.num_shards);
  for (Shard& shard : shards_) {
    shard.keys = RecordArena(config_.format);
    shard.spill = RecordArena(config_.format);
  }
}

HashCombineShards::~HashCombineShards() = default;

std::size_t HashCombineShards::resident_bytes(const Shard& shard) const {
  return shard.keys.payload_bytes() + shard.values.size() +
         shard.entries.capacity() * sizeof(Entry) +
         shard.slots.size() * sizeof(std::uint32_t);
}

std::uint32_t HashCombineShards::alloc_block(Shard& shard,
                                             std::string_view value) {
  // Slack so counter-style combined values can grow a few digits without
  // abandoning the block.
  const std::size_t cap = value.size() + (value.size() >> 1) + 8;
  const std::size_t offset = shard.values.size();
  TEXTMR_CHECK(offset + kBlockHeader + cap < kNil,
               "hash-combine shard value heap overflow");
  shard.values.resize(offset + kBlockHeader + cap);
  store_u32(shard.values, offset, kNil);
  store_u32(shard.values, offset + 4,
            static_cast<std::uint32_t>(value.size()));
  store_u32(shard.values, offset + 8, static_cast<std::uint32_t>(cap));
  std::memcpy(shard.values.data() + offset + kBlockHeader, value.data(),
              value.size());
  return static_cast<std::uint32_t>(offset);
}

void HashCombineShards::grow_slots(Shard& shard) {
  const std::size_t size =
      shard.slots.empty() ? 64 : shard.slots.size() * 2;
  shard.slots.assign(size, 0);
  const std::uint64_t mask = size - 1;
  for (std::size_t e = 0; e < shard.entries.size(); ++e) {
    std::uint64_t j = shard.entries[e].hash & mask;
    while (shard.slots[j] != 0) j = (j + 1) & mask;
    shard.slots[j] = static_cast<std::uint32_t>(e + 1);
  }
}

namespace {

/// ValueStream over an entry's chain followed by the incoming value.
/// Chain values are copied into a reused scratch before being handed out:
/// a combiner may emit() between next() calls, and the emit path can grow
/// or overwrite the very heap these blocks live in — an offset survives
/// that, a view into the heap does not.
class ChainValueStream final : public ValueStream {
 public:
  ChainValueStream(const std::vector<char>& heap, std::uint32_t head,
                   std::string_view incoming, std::uint32_t nil)
      : heap_(heap), cursor_(head), incoming_(incoming), nil_(nil) {}

  std::optional<std::string_view> next() override {
    if (cursor_ != nil_) {
      scratch_.assign(block_value(heap_, cursor_));
      cursor_ = load_u32(heap_, cursor_);
      return std::string_view(scratch_);
    }
    if (!incoming_consumed_) {
      incoming_consumed_ = true;
      return incoming_;
    }
    return std::nullopt;
  }

 private:
  const std::vector<char>& heap_;
  std::uint32_t cursor_;
  std::string_view incoming_;
  std::uint32_t nil_;
  bool incoming_consumed_ = false;
  std::string scratch_;
};

}  // namespace

void HashCombineShards::combine_into(Shard& shard, Entry& entry,
                                     std::string_view value) {
  ChainValueStream values(shard.values, entry.value_head, value, kNil);

  // Sink replacing the entry's chain with whatever the combiner emits.
  // Every emitted value is staged through combine_scratch_ first: the
  // combiner may hand us a view into the chain it just read, and both the
  // in-place overwrite and a heap-growing block allocation would clobber
  // or move those bytes mid-copy.
  class ReplaceSink final : public EmitSink {
   public:
    ReplaceSink(HashCombineShards& table, Shard& shard, Entry& entry,
                std::string_view expected_key)
        : table_(table), shard_(shard), entry_(entry),
          expected_key_(expected_key) {}

    void emit(std::string_view key, std::string_view value) override {
      TEXTMR_CHECK(key == expected_key_,
                   "combiner must be key-preserving (hash-combine path)");
      std::string& scratch = table_.combine_scratch_;
      scratch.assign(value.data(), value.size());
      if (first_) {
        first_ = false;
        const std::uint32_t head = entry_.value_head;
        if (head != kNil &&
            load_u32(shard_.values, head + 8) >= scratch.size()) {
          // Overwrite in place; the old chain tail (if any) becomes heap
          // garbage until the next flush reclaims the shard.
          store_u32(shard_.values, head,
                    kNil);
          store_u32(shard_.values, head + 4,
                    static_cast<std::uint32_t>(scratch.size()));
          std::memcpy(shard_.values.data() + head + kBlockHeader,
                      scratch.data(), scratch.size());
          entry_.value_tail = head;
        } else {
          entry_.value_head = entry_.value_tail =
              table_.alloc_block(shard_, scratch);
        }
      } else {
        const std::uint32_t block = table_.alloc_block(shard_, scratch);
        store_u32(shard_.values, entry_.value_tail, block);
        entry_.value_tail = block;
      }
    }

    bool emitted() const { return !first_; }

   private:
    HashCombineShards& table_;
    Shard& shard_;
    Entry& entry_;
    std::string_view expected_key_;
    bool first_ = true;
  };

  ReplaceSink sink(*this, shard, entry, entry.key_ref.key());
  combiner_->reduce(entry.key_ref.key(), values, sink);
  if (!sink.emitted()) {
    // A combiner may legitimately emit nothing for a key; the entry then
    // holds no values and the flush skips it (exactly what the sort path
    // does when a combined group produces no records).
    entry.value_head = entry.value_tail = kNil;
  }
}

void HashCombineShards::hash_insert(Shard& shard, std::uint32_t shard_index,
                                    std::uint32_t partition,
                                    std::string_view key,
                                    std::string_view value) {
  (void)shard_index;
  if (shard.entries.size() + 1 > shard.slots.size() * 7 / 10) {
    grow_slots(shard);
  }
  // The slot hash remixes the key hash with the partition: entries are
  // keyed by (partition, key) — the skew partitioner round-robins one
  // split key across partitions, and those streams must combine apart.
  const std::uint64_t slot_hash =
      mix64(hash_key(key) + partition * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t prefix = key_prefix8(key);
  const std::uint64_t mask = shard.slots.size() - 1;
  std::uint64_t j = slot_hash & mask;
  while (true) {
    const std::uint32_t idx = shard.slots[j];
    if (idx == 0) break;
    Entry& entry = shard.entries[idx - 1];
    // Cheap rejects first (hash, partition, size, 8-byte prefix); the
    // full-key compare confirms — equal prefixes with differing tails
    // are a first-class case (tests/test_hash_combine.cpp).
    if (entry.hash == slot_hash && entry.key_ref.partition == partition &&
        entry.key_ref.key_size == key.size() &&
        entry.key_ref.key_prefix == prefix && entry.key_ref.key() == key) {
      ++shard.hits;
      ++stats_.hits;
      if (combiner_ != nullptr) {
        combine_into(shard, entry, value);
      } else {
        const std::uint32_t block = alloc_block(shard, value);
        if (entry.value_tail == kNil) {
          entry.value_head = entry.value_tail = block;
        } else {
          store_u32(shard.values, entry.value_tail, block);
          entry.value_tail = block;
        }
      }
      return;
    }
    j = (j + 1) & mask;
  }
  // New key: the frame lives in the shard's key arena (stable addresses);
  // the RecordRef is copied out *by value* — records() can reallocate on
  // the next append, so holding the returned reference is the lifetime
  // bug the static analyzer hunts (DESIGN.md §15).
  Entry entry;
  entry.key_ref = shard.keys.append(partition, key, std::string_view(""));
  entry.hash = slot_hash;
  entry.value_head = entry.value_tail = alloc_block(shard, value);
  shard.entries.push_back(entry);
  shard.slots[j] = static_cast<std::uint32_t>(shard.entries.size());
}

void HashCombineShards::demoted_insert(Shard& shard, std::uint32_t partition,
                                       std::string_view key,
                                       std::string_view value) {
  shard.spill.append(partition, key, value);
  if (shard.spill.payload_bytes() >= watermark_) {
    flush_demoted(shard, static_cast<std::uint32_t>(&shard - shards_.data()),
                  /*final=*/false);
  }
}

void HashCombineShards::insert(std::uint32_t partition, std::string_view key,
                               std::string_view value) {
  ++stats_.records;
  const std::uint64_t h = hash_key(key);
  // Shard from the high bits, slot index (inside hash_insert) from a
  // remix of the low: using the same bits for both would leave every
  // shard's table clustered in 1/P of its slots.
  const std::uint32_t shard_index =
      static_cast<std::uint32_t>((h >> 32) % config_.num_shards);
  Shard& shard = shards_[shard_index];
  ++shard.records;
  if (shard.demoted) {
    demoted_insert(shard, partition, key, value);
    return;
  }
  hash_insert(shard, shard_index, partition, key, value);
  if (resident_bytes(shard) > watermark_) {
    flush_shard(shard, shard_index);
  }
}

void HashCombineShards::radix_sort(std::vector<FlushItem>& items) {
  const std::size_t n = items.size();
  if (n < 2) return;
  flush_scratch_.resize(n);
  FlushItem* a = items.data();
  FlushItem* b = flush_scratch_.data();
  std::array<std::uint32_t, 257> count;

  // Stable LSD over the big-endian key prefix: least-significant byte
  // first, so the final pass (most-significant = first key byte) owns the
  // order and earlier passes break its ties.
  for (unsigned shift = 0; shift < 64; shift += 8) {
    count.fill(0);
    for (std::size_t i = 0; i < n; ++i) {
      ++count[((a[i].prefix >> shift) & 0xff) + 1];
    }
    // Short text keys zero-pad the low prefix bytes; skip uniform passes.
    bool uniform = false;
    for (std::size_t bucket = 1; bucket <= 256; ++bucket) {
      if (count[bucket] == n) {
        uniform = true;
        break;
      }
      if (count[bucket] != 0) break;
    }
    if (uniform) continue;
    for (std::size_t bucket = 1; bucket <= 256; ++bucket) {
      count[bucket] += count[bucket - 1];
    }
    for (std::size_t i = 0; i < n; ++i) {
      b[count[(a[i].prefix >> shift) & 0xff]++] = a[i];
    }
    std::swap(a, b);
  }

  // Most-significant pass: the partition (runs group by partition first).
  part_count_.assign(config_.num_partitions + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++part_count_[a[i].partition + 1];
  for (std::size_t p = 1; p <= config_.num_partitions; ++p) {
    part_count_[p] += part_count_[p - 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    b[part_count_[a[i].partition]++] = a[i];
  }
  std::swap(a, b);
  if (a != items.data()) {
    std::memcpy(items.data(), a, n * sizeof(FlushItem));
  }

  // Fallback comparison on (partition, prefix) ties: equal prefixes decide
  // nothing for >8-byte keys or zero-padded short keys (record_arena.hpp),
  // so those spans fall back to the full-key compare.
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && items[j].partition == items[i].partition &&
           items[j].prefix == items[i].prefix) {
      ++j;
    }
    if (j - i > 1) {
      std::sort(items.begin() + static_cast<std::ptrdiff_t>(i),
                items.begin() + static_cast<std::ptrdiff_t>(j),
                [this](const FlushItem& x, const FlushItem& y) {
                  return shards_[x.shard].entries[x.entry].key_ref.key() <
                         shards_[y.shard].entries[y.entry].key_ref.key();
                });
    }
    i = j;
  }
}

void HashCombineShards::write_sorted(const std::vector<FlushItem>& items,
                                     io::SpillRunWriter& writer) {
  for (const FlushItem& item : items) {
    const Shard& shard = shards_[item.shard];
    const Entry& entry = shard.entries[item.entry];
    std::uint32_t cursor = entry.value_head;
    while (cursor != kNil) {
      writer.append(item.partition, entry.key_ref.key(),
                    block_value(shard.values, cursor));
      cursor = load_u32(shard.values, cursor);
    }
  }
}

void HashCombineShards::flush_shard(Shard& shard, std::uint32_t shard_index) {
  const std::uint64_t t0 = monotonic_ns();
  obs::SpanTimer span(trace_, "spill", "hash_flush");
  span.arg("shard", static_cast<double>(shard_index));
  span.arg("entries", static_cast<double>(shard.entries.size()));

  flush_items_.clear();
  for (std::size_t e = 0; e < shard.entries.size(); ++e) {
    const Entry& entry = shard.entries[e];
    if (entry.value_head == kNil) continue;
    flush_items_.push_back(FlushItem{entry.key_ref.key_prefix,
                                     entry.key_ref.partition,
                                     static_cast<std::uint32_t>(e),
                                     shard_index});
  }
  radix_sort(flush_items_);
  const std::uint64_t sorted_ns = monotonic_ns();

  io::SpillRunWriter writer(next_run_path_(run_sequence_++),
                            config_.num_partitions, config_.format);
  write_sorted(flush_items_, writer);
  io::SpillRunInfo info = writer.finish();
  const std::uint64_t done_ns = monotonic_ns();
  span.arg("records", static_cast<double>(info.records));

  metrics_.op_ns(Op::kSort) += sorted_ns - t0;
  metrics_.op_ns(Op::kSpillWrite) += done_ns - sorted_ns;
  metrics_.spilled_records += info.records;
  metrics_.spilled_bytes += info.bytes;
  metrics_.spill_count += 1;
  runs_.push_back(std::move(info));
  ++stats_.flushes;
  ++shard.flush_count;

  // Reset the shard but keep every allocation (arena chunks, entry and
  // slot capacity, the value heap) — refills are allocation-free.
  shard.entries.clear();
  shard.keys.clear();
  shard.values.clear();
  std::fill(shard.slots.begin(), shard.slots.end(), 0);

  if (shard.flush_count >= config_.demote_after_flushes) {
    // Persistent pressure: this keyspace does not fit the watermark, so
    // hashing only adds probe cost on top of the same spill volume. Fall
    // back to the proven sort-spill path for the rest of the task.
    shard.demoted = true;
    ++stats_.demotions;
    obs::record_instant(trace_, "spill", "hash_demote", "shard",
                        static_cast<double>(shard_index), "flushes",
                        static_cast<double>(shard.flush_count));
  }
  flush_ns_ += monotonic_ns() - t0;
}

void HashCombineShards::flush_demoted(Shard& shard, std::uint32_t shard_index,
                                      bool final) {
  if (shard.spill.size() == 0) return;
  const std::uint64_t t0 = monotonic_ns();
  // The demoted path *is* the existing sort path: build a Spill over the
  // arena's refs and reuse sort_and_spill (same sort, same combiner
  // grouping, same frame blits) so pressured shards write byte-identical
  // runs to what the ring pipeline would have produced.
  Spill spill;
  spill.records = shard.spill.records();
  spill.format = config_.format;
  spill.data_bytes = shard.spill.payload_bytes();
  spill.sequence = run_sequence_;
  spill.is_final = final;
  io::SpillRunInfo info =
      sort_and_spill(spill, combiner_, next_run_path_(run_sequence_++),
                     config_.num_partitions, config_.format, metrics_, trace_);
  runs_.push_back(std::move(info));
  shard.spill.clear();
  (void)shard_index;
  flush_ns_ += monotonic_ns() - t0;
}

std::vector<io::SpillRunInfo> HashCombineShards::finish() {
  TEXTMR_CHECK(!finished_, "hash-combine table finished twice");
  finished_ = true;

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].demoted) {
      flush_demoted(shards_[s], static_cast<std::uint32_t>(s),
                    /*final=*/true);
    }
  }

  // Residue fast path: all live shards' entries globally sorted into ONE
  // run. In the common no-pressure case this is the task's only run, so
  // the final merge degenerates to a rename.
  flush_items_.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    for (std::size_t e = 0; e < shard.entries.size(); ++e) {
      const Entry& entry = shard.entries[e];
      if (entry.value_head == kNil) continue;
      flush_items_.push_back(FlushItem{entry.key_ref.key_prefix,
                                       entry.key_ref.partition,
                                       static_cast<std::uint32_t>(e),
                                       static_cast<std::uint32_t>(s)});
    }
  }
  if (!flush_items_.empty()) {
    const std::uint64_t t0 = monotonic_ns();
    obs::SpanTimer span(trace_, "spill", "hash_flush");
    span.arg("entries", static_cast<double>(flush_items_.size()));
    span.arg("final", 1.0);
    radix_sort(flush_items_);
    const std::uint64_t sorted_ns = monotonic_ns();
    io::SpillRunWriter writer(next_run_path_(run_sequence_++),
                              config_.num_partitions, config_.format);
    write_sorted(flush_items_, writer);
    io::SpillRunInfo info = writer.finish();
    span.arg("records", static_cast<double>(info.records));
    metrics_.op_ns(Op::kSort) += sorted_ns - t0;
    metrics_.op_ns(Op::kSpillWrite) += monotonic_ns() - sorted_ns;
    metrics_.spilled_records += info.records;
    metrics_.spilled_bytes += info.bytes;
    metrics_.spill_count += 1;
    runs_.push_back(std::move(info));
    flush_ns_ += monotonic_ns() - t0;
  }

  metrics_.hash_combine_hits += stats_.hits;
  metrics_.hash_combine_flushes += stats_.flushes;
  metrics_.hash_combine_demotions += stats_.demotions;
  return runs_;
}

}  // namespace textmr::mr
