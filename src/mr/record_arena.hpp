#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "common/annotations.hpp"
#include "io/spill_file.hpp"

namespace textmr::mr {

/// First 8 key bytes, big-endian, zero-padded. Because the load is
/// big-endian, integer comparison of two prefixes orders them exactly like
/// lexicographic comparison of the first 8 key bytes; a zero pad ranks a
/// short key before any longer key it prefixes. When two prefixes are
/// *equal* nothing is decided (the short-key pad is indistinguishable from
/// embedded NULs) and the caller must fall back to a full compare — see
/// record_ref_less.
inline std::uint64_t key_prefix8(std::string_view key) {
  std::uint64_t prefix = 0;
  const std::size_t n = key.size() < 8 ? key.size() : 8;
  for (std::size_t i = 0; i < n; ++i) {
    prefix |= static_cast<std::uint64_t>(static_cast<unsigned char>(key[i]))
              << (56 - 8 * i);
  }
  return prefix;
}

/// A reference to one *framed* record — [header][key][value] in a spill
/// format — living in storage owned by someone else (the spill ring, a
/// RecordArena, or a bulk-read partition buffer). Valid until that storage
/// is released. The key prefix and sizes are denormalized here so the sort
/// comparator touches record bytes only on prefix ties (DESIGN.md §8).
struct RecordRef {
  const char* frame;         // start of the framed record
  std::uint64_t key_prefix;  // key_prefix8(key())
  std::uint32_t key_size;
  std::uint32_t value_size;
  std::uint32_t partition;
  std::uint16_t header_size;  // frame bytes before the key

  std::string_view key() const { return {frame + header_size, key_size}; }
  std::string_view value() const {
    return {frame + header_size + key_size, value_size};
  }
  std::size_t frame_bytes() const {
    return static_cast<std::size_t>(header_size) + key_size + value_size;
  }
  std::string_view frame_view() const { return {frame, frame_bytes()}; }
};

/// Spill-path record order: (partition, key). The prefix comparison
/// resolves almost every pair for text keys without touching the frames.
inline bool record_ref_less(const RecordRef& a, const RecordRef& b) {
  if (a.partition != b.partition) return a.partition < b.partition;
  if (a.key_prefix != b.key_prefix) return a.key_prefix < b.key_prefix;
  return a.key() < b.key();
}

/// Key equality for grouping sorted refs. Keys of <= 8 bytes are decided
/// by (size, prefix) alone.
inline bool record_key_equal(const RecordRef& a, const RecordRef& b) {
  if (a.key_size != b.key_size || a.key_prefix != b.key_prefix) return false;
  if (a.key_size <= 8) return true;
  return std::memcmp(a.frame + a.header_size + 8, b.frame + b.header_size + 8,
                     a.key_size - 8) == 0;
}

/// Append-only arena of framed records with stable addresses: records are
/// encoded once into chunked storage and referenced through RecordRefs,
/// so sorting, combining and writing never copy key/value bytes again.
/// Used by the reduce-side hash path, the test spill builders and the
/// record-path benchmarks; the map-side ring (SpillBuffer) implements the
/// same frame layout with bounded circular storage instead.
class RecordArena {
 public:
  explicit RecordArena(
      io::SpillFormat format = io::SpillFormat::kCompactVarint,
      std::size_t chunk_bytes = 1u << 18)
      : format_(format), chunk_bytes_(chunk_bytes) {}

  const RecordRef& append(std::uint32_t partition, std::string_view key,
                          std::string_view value) TEXTMR_LIFETIME_BOUND;

  const std::vector<RecordRef>& records() const TEXTMR_LIFETIME_BOUND {
    return records_;
  }
  std::vector<RecordRef>& records() TEXTMR_LIFETIME_BOUND {
    return records_;  // sortable in place
  }
  std::size_t size() const { return records_.size(); }
  std::uint64_t payload_bytes() const { return payload_bytes_; }
  io::SpillFormat format() const { return format_; }

  /// Forgets all records but keeps the chunk storage for reuse, so a
  /// cleared arena refills without heap allocations.
  void clear();

 private:
  char* allocate(std::size_t bytes);

  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size;
  };

  io::SpillFormat format_;
  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_chunk_ = 0;  // chunks_[active_chunk_] is being filled
  std::size_t chunk_used_ = 0;
  std::vector<RecordRef> records_;
  std::uint64_t payload_bytes_ = 0;
};

/// Decodes a partition's record-stream bytes (as returned by
/// SpillRunReader::read_partition) into RecordRefs pointing *into* `data`
/// — the zero-copy half of the shuffle. `data` must stay alive and
/// unmoved while the refs are used. Throws FormatError on a malformed
/// stream.
std::vector<RecordRef> index_frames(std::string_view data
                                        TEXTMR_LIFETIME_BOUND,
                                    std::uint32_t partition,
                                    io::SpillFormat format);

}  // namespace textmr::mr
