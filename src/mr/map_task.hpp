#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>

#include "freqbuf/controller.hpp"
#include "io/line_reader.hpp"
#include "io/spill_file.hpp"
#include "mr/metrics.hpp"
#include "mr/types.hpp"
#include "obs/trace.hpp"
#include "spillmatch/spill_matcher.hpp"

namespace textmr::mr {

struct SkewPlan;

/// Everything a single map task needs. The engine builds one of these per
/// input split.
struct MapTaskConfig {
  std::uint32_t task_id = 0;
  /// Execution attempt of this task (0-based). Every scratch file the
  /// attempt writes is prefixed with map_attempt_prefix(task_id, attempt),
  /// so a retry never reads — and the engine can cleanly delete — a dead
  /// attempt's runs.
  std::uint32_t attempt = 0;
  io::InputSplit split;
  /// Physical partition count the task spills (plan->num_physical() in
  /// skew mode, num_reducers otherwise).
  std::uint32_t num_partitions = 1;
  /// Heavy-key routing plan (may be null = pure hash partitioning). Not
  /// owned; must outlive the task. When set, num_partitions must equal
  /// skew_plan->num_physical().
  const SkewPlan* skew_plan = nullptr;

  MapperFactory mapper;
  ReducerFactory combiner;  // may be null

  std::size_t spill_buffer_bytes = 16u << 20;
  io::SpillFormat spill_format = io::SpillFormat::kCompactVarint;

  /// Map-side combine strategy (DESIGN.md §15). kSort runs the classic
  /// ring/sort/spill pipeline below; kHash combines on insert into
  /// per-task shard hash tables on the map thread itself (no support
  /// threads, no ring) and radix-sorts at flush time. The two modes
  /// produce byte-identical task output.
  CombineMode combine_mode = CombineMode::kSort;
  std::uint32_t hash_combine_shards = 8;
  /// Per-shard resident-byte watermark; 0 derives it from the memory
  /// budget (spill_buffer_bytes, which the hash tables inherit).
  std::size_t hash_combine_watermark_bytes = 0;
  /// Watermark breaches before a shard is demoted to the sort-spill path.
  std::uint32_t hash_combine_demote_flushes = 4;
  /// Number of support (sort/combine/spill) threads — the paper's
  /// "one or more support threads" (§IV-A). 1 reproduces Hadoop's
  /// 1-map/1-support pipeline that the spill-matcher analysis assumes.
  std::uint32_t support_threads = 1;
  std::filesystem::path scratch_dir;

  /// Spill threshold policy; if null, Hadoop's fixed 0.8 is used.
  spillmatch::SpillPolicyFactory spill_policy;

  /// Frequency-buffering; `freqbuf.enabled` gates it. When enabled, the
  /// engine has already carved `table_budget_bytes` out of the memory
  /// budget (spill_buffer_bytes excludes it).
  freqbuf::FreqBufConfig freqbuf;
  std::uint64_t freq_table_budget_bytes = 0;
  freqbuf::NodeKeyCache* node_cache = nullptr;  // may be null

  bool keep_spill_runs = false;  // keep intermediate spill files on disk

  /// When non-null, the map thread stores its input-consumption fraction
  /// here as it runs (relaxed stores). The cluster worker points this at
  /// the per-task progress cell its heartbeat thread reports from.
  std::atomic<double>* progress = nullptr;

  /// When non-null the task registers per-thread trace rings (map thread,
  /// each support thread, the spill buffer) and records lifecycle events.
  obs::TraceCollector* trace = nullptr;
};

/// Result of one map task: its merged, partition-indexed output run plus
/// both threads' metrics.
struct MapTaskResult {
  io::SpillRunInfo output;
  TaskMetrics map_thread;      // includes Op::kMapIdle
  TaskMetrics support_thread;  // includes Op::kSupportIdle
  Counters counters;           // user counters from mapper + combiners
  std::uint64_t wall_ns = 0;   // task wall time (map phase incl. merge)
  std::uint64_t pipeline_wall_ns = 0;  // wall time of the produce/consume pipeline
  std::uint64_t spills = 0;
  double final_spill_threshold = 0.8;
  freqbuf::FreqBufferController::Stage freq_stage_at_end =
      freqbuf::FreqBufferController::Stage::kPreProfile;
  double freq_sampling_fraction = 0.0;
};

/// Scratch-file name prefix for one (task, attempt) pair — e.g.
/// "map3_a1_". Shared by the task (file creation) and the engine
/// (failed-attempt cleanup by prefix scan).
std::string map_attempt_prefix(std::uint32_t task_id, std::uint32_t attempt);

/// Runs one map task: map thread (caller's thread) + one support thread,
/// exactly Hadoop's 1-map 1-support structure that the paper instruments
/// (§II-C2) and optimizes (§III, §IV).
MapTaskResult run_map_task(const MapTaskConfig& config);

}  // namespace textmr::mr
