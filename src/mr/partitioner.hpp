#pragma once

#include <cstdint>
#include <string_view>

#include "common/hash.hpp"

namespace textmr::mr {

/// Hadoop-style hash partitioner: deterministic across runs and platforms
/// so output layouts are reproducible.
class HashPartitioner {
 public:
  explicit HashPartitioner(std::uint32_t num_partitions)
      : num_partitions_(num_partitions) {}

  std::uint32_t operator()(std::string_view key) const noexcept {
    return static_cast<std::uint32_t>(hash_key(key) % num_partitions_);
  }

  std::uint32_t num_partitions() const noexcept { return num_partitions_; }

 private:
  std::uint32_t num_partitions_;
};

}  // namespace textmr::mr
