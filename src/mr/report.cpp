#include "mr/report.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace textmr::mr {
namespace {

void appendf(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (n > 0) out.append(buffer, std::min<std::size_t>(n, sizeof(buffer) - 1));
}

double seconds(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

}  // namespace

std::string format_job_summary(const JobResult& result) {
  const auto& work = result.metrics.work;
  const double total = seconds(work.total_ns());
  const double user = seconds(work.user_ns());
  std::string out;
  appendf(out,
          "wall %.2fs | work %.2fs (user %.0f%%, framework %.0f%%) | "
          "%llu map + %llu reduce tasks",
          seconds(result.metrics.job_wall_ns), total,
          total > 0 ? 100.0 * user / total : 0.0,
          total > 0 ? 100.0 * (total - user) / total : 0.0,
          static_cast<unsigned long long>(result.metrics.map_tasks),
          static_cast<unsigned long long>(result.metrics.reduce_tasks));
  return out;
}

std::string format_job_report(const JobResult& result,
                              const std::string& job_name) {
  const auto& m = result.metrics;
  const auto& work = m.work;
  std::string out;
  appendf(out, "=== job report: %s ===\n", job_name.c_str());
  appendf(out, "wall: total %.2fs (map phase %.2fs, reduce phase %.2fs)\n",
          seconds(m.job_wall_ns), seconds(m.map_phase_wall_ns),
          seconds(m.reduce_phase_wall_ns));

  appendf(out, "serialized work by operation:\n");
  const double total = static_cast<double>(work.total_ns());
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const auto op = static_cast<Op>(i);
    if (op == Op::kMapIdle || op == Op::kSupportIdle) continue;
    const std::uint64_t ns = work.op_ns(op);
    if (ns == 0) continue;
    appendf(out, "  %-14s %8.3fs %5.1f%%%s\n", op_name(op), seconds(ns),
            total > 0 ? 100.0 * static_cast<double>(ns) / total : 0.0,
            is_user_code(op) ? "  [user code]" : "");
  }
  appendf(out, "  user code %.1f%%, abstraction cost %.1f%%\n",
          total > 0 ? 100.0 * static_cast<double>(work.user_ns()) / total : 0.0,
          total > 0
              ? 100.0 * static_cast<double>(work.abstraction_ns()) / total
              : 0.0);

  appendf(out, "intra-map parallelism: map thread idle %.1f%%, "
               "support thread idle %.1f%%\n",
          100.0 * m.map_idle_fraction(), 100.0 * m.support_idle_fraction());

  appendf(out, "volumes:\n");
  appendf(out, "  input            %10llu records %12.1f KB\n",
          static_cast<unsigned long long>(work.input_records),
          static_cast<double>(work.input_bytes) / 1024.0);
  appendf(out, "  map output       %10llu records %12.1f KB\n",
          static_cast<unsigned long long>(work.map_output_records),
          static_cast<double>(work.map_output_bytes) / 1024.0);
  if (work.freq_hits > 0) {
    appendf(out, "  freq-table hits  %10llu records (flushed back: %llu)\n",
            static_cast<unsigned long long>(work.freq_hits),
            static_cast<unsigned long long>(work.freq_flushes));
  }
  appendf(out, "  spilled          %10llu records %12.1f KB in %llu spills\n",
          static_cast<unsigned long long>(work.spilled_records),
          static_cast<double>(work.spilled_bytes) / 1024.0,
          static_cast<unsigned long long>(work.spill_count));
  appendf(out, "  map output (merged) %7llu records %12.1f KB\n",
          static_cast<unsigned long long>(work.merged_records),
          static_cast<double>(work.merged_bytes) / 1024.0);
  appendf(out, "  shuffled         %23.1f KB\n",
          static_cast<double>(work.shuffled_bytes) / 1024.0);
  appendf(out, "  output           %10llu records %12.1f KB\n",
          static_cast<unsigned long long>(work.output_records),
          static_cast<double>(work.output_bytes) / 1024.0);
  if (!result.counters.empty()) {
    appendf(out, "user counters:\n");
    for (const auto& [name, value] : result.counters.all()) {
      appendf(out, "  %-28s %llu\n", name.c_str(),
              static_cast<unsigned long long>(value));
    }
  }
  return out;
}

}  // namespace textmr::mr
