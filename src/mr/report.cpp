#include "mr/report.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "obs/json.hpp"

namespace textmr::mr {
namespace {

void appendf(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (n < 0) {
    va_end(args_copy);
    return;
  }
  if (static_cast<std::size_t>(n) < sizeof(buffer)) {
    out.append(buffer, static_cast<std::size_t>(n));
  } else {
    // Line longer than the stack buffer: render again into the output
    // string itself instead of truncating (e.g. long counter names).
    const std::size_t old_size = out.size();
    out.resize(old_size + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data() + old_size, static_cast<std::size_t>(n) + 1,
                   format, args_copy);
    out.resize(old_size + static_cast<std::size_t>(n));
  }
  va_end(args_copy);
}

double seconds(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

}  // namespace

std::string format_job_summary(const JobResult& result) {
  const auto& work = result.metrics.work;
  const double total = seconds(work.total_ns());
  const double user = seconds(work.user_ns());
  std::string out;
  appendf(out,
          "wall %.2fs | work %.2fs (user %.0f%%, framework %.0f%%) | "
          "%llu map + %llu reduce tasks",
          seconds(result.metrics.job_wall_ns), total,
          total > 0 ? 100.0 * user / total : 0.0,
          total > 0 ? 100.0 * (total - user) / total : 0.0,
          static_cast<unsigned long long>(result.metrics.map_tasks),
          static_cast<unsigned long long>(result.metrics.reduce_tasks));
  return out;
}

std::string format_job_report(const JobResult& result,
                              const std::string& job_name) {
  const auto& m = result.metrics;
  const auto& work = m.work;
  std::string out;
  appendf(out, "=== job report: %s ===\n", job_name.c_str());
  appendf(out, "wall: total %.2fs (map phase %.2fs, reduce phase %.2fs)\n",
          seconds(m.job_wall_ns), seconds(m.map_phase_wall_ns),
          seconds(m.reduce_phase_wall_ns));

  appendf(out, "serialized work by operation:\n");
  const double total = static_cast<double>(work.total_ns());
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const auto op = static_cast<Op>(i);
    if (op == Op::kMapIdle || op == Op::kSupportIdle) continue;
    const std::uint64_t ns = work.op_ns(op);
    if (ns == 0) continue;
    appendf(out, "  %-14s %8.3fs %5.1f%%%s\n", op_name(op), seconds(ns),
            total > 0 ? 100.0 * static_cast<double>(ns) / total : 0.0,
            is_user_code(op) ? "  [user code]" : "");
  }
  appendf(out, "  user code %.1f%%, abstraction cost %.1f%%\n",
          total > 0 ? 100.0 * static_cast<double>(work.user_ns()) / total : 0.0,
          total > 0
              ? 100.0 * static_cast<double>(work.abstraction_ns()) / total
              : 0.0);

  appendf(out, "intra-map parallelism: map thread idle %.1f%%, "
               "support thread idle %.1f%%\n",
          100.0 * m.map_idle_fraction(), 100.0 * m.support_idle_fraction());

  if (m.tasks_retried > 0) {
    appendf(out, "recovery: %llu tasks retried, %llu attempts for %llu tasks\n",
            static_cast<unsigned long long>(m.tasks_retried),
            static_cast<unsigned long long>(m.task_attempts),
            static_cast<unsigned long long>(m.map_tasks + m.reduce_tasks));
  }

  appendf(out, "volumes:\n");
  appendf(out, "  input            %10llu records %12.1f KB\n",
          static_cast<unsigned long long>(work.input_records),
          static_cast<double>(work.input_bytes) / 1024.0);
  appendf(out, "  map output       %10llu records %12.1f KB\n",
          static_cast<unsigned long long>(work.map_output_records),
          static_cast<double>(work.map_output_bytes) / 1024.0);
  if (work.freq_hits > 0) {
    appendf(out, "  freq-table hits  %10llu records (flushed back: %llu)\n",
            static_cast<unsigned long long>(work.freq_hits),
            static_cast<unsigned long long>(work.freq_flushes));
  }
  if (work.hash_combine_hits > 0 || work.hash_combine_flushes > 0) {
    appendf(out, "  hash-combine hits %9llu records (%llu flushes, %llu demotions)\n",
            static_cast<unsigned long long>(work.hash_combine_hits),
            static_cast<unsigned long long>(work.hash_combine_flushes),
            static_cast<unsigned long long>(work.hash_combine_demotions));
  }
  appendf(out, "  spilled          %10llu records %12.1f KB in %llu spills\n",
          static_cast<unsigned long long>(work.spilled_records),
          static_cast<double>(work.spilled_bytes) / 1024.0,
          static_cast<unsigned long long>(work.spill_count));
  appendf(out, "  map output (merged) %7llu records %12.1f KB\n",
          static_cast<unsigned long long>(work.merged_records),
          static_cast<double>(work.merged_bytes) / 1024.0);
  appendf(out, "  shuffled         %23.1f KB\n",
          static_cast<double>(work.shuffled_bytes) / 1024.0);
  appendf(out, "  output           %10llu records %12.1f KB\n",
          static_cast<unsigned long long>(work.output_records),
          static_cast<double>(work.output_bytes) / 1024.0);
  if (m.partition_bytes_max > 0) {
    appendf(out,
            "partition skew: max %.1f KB / median %.1f KB = %.2fx shuffled\n",
            static_cast<double>(m.partition_bytes_max) / 1024.0,
            static_cast<double>(m.partition_bytes_median) / 1024.0,
            m.partition_skew_ratio());
  }
  if (!m.workers.empty()) {
    appendf(out, "cluster workers (records skew %.2fx%s):\n",
            m.worker_records_skew(),
            m.telemetry_incomplete ? ", telemetry incomplete" : "");
    for (const auto& worker : m.workers) {
      appendf(out,
              "  worker %-3u %8llu records %10.1f KB, %llu tasks "
              "(%llu failed), task p50 %.3fs p99 %.3fs%s\n",
              worker.worker_id,
              static_cast<unsigned long long>(worker.records),
              static_cast<double>(worker.bytes) / 1024.0,
              static_cast<unsigned long long>(worker.tasks_completed),
              static_cast<unsigned long long>(worker.task_failures),
              seconds(worker.task_latency_ns.quantile(0.5)),
              seconds(worker.task_latency_ns.quantile(0.99)),
              worker.telemetry_complete ? "" : "  [partial]");
    }
  }
  if (m.trace_ring_dropped > 0) {
    appendf(out, "trace: %llu events dropped to ring overflow\n",
            static_cast<unsigned long long>(m.trace_ring_dropped));
  }
  if (!result.counters.empty()) {
    appendf(out, "user counters:\n");
    for (const auto& [name, value] : result.counters.all()) {
      appendf(out, "  %-28s %llu\n", name.c_str(),
              static_cast<unsigned long long>(value));
    }
  }
  return out;
}

namespace {

/// Serializes one TaskMetrics: per-op ns breakdown (zero ops omitted),
/// the derived totals, and the volume counters.
void write_task_metrics(obs::JsonWriter& w, const TaskMetrics& m) {
  w.begin_object();
  w.key("ops_ns").begin_object();
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const auto op = static_cast<Op>(i);
    const std::uint64_t ns = m.op_ns(op);
    if (ns == 0) continue;
    w.field(op_name(op), ns);
  }
  w.end_object();
  w.field("total_ns", m.total_ns());
  w.field("user_ns", m.user_ns());
  w.field("abstraction_ns", m.abstraction_ns());
  w.key("volumes").begin_object();
  w.field("input_records", m.input_records);
  w.field("input_bytes", m.input_bytes);
  w.field("map_output_records", m.map_output_records);
  w.field("map_output_bytes", m.map_output_bytes);
  w.field("freq_hits", m.freq_hits);
  w.field("freq_flushes", m.freq_flushes);
  w.field("hash_combine_hits", m.hash_combine_hits);
  w.field("hash_combine_flushes", m.hash_combine_flushes);
  w.field("hash_combine_demotions", m.hash_combine_demotions);
  w.field("spill_input_records", m.spill_input_records);
  w.field("spill_input_bytes", m.spill_input_bytes);
  w.field("spilled_records", m.spilled_records);
  w.field("spilled_bytes", m.spilled_bytes);
  w.field("spill_count", m.spill_count);
  w.field("merged_records", m.merged_records);
  w.field("merged_bytes", m.merged_bytes);
  w.field("shuffled_bytes", m.shuffled_bytes);
  w.field("shuffled_wire_bytes", m.shuffled_wire_bytes);
  w.field("reduce_input_records", m.reduce_input_records);
  w.field("reduce_groups", m.reduce_groups);
  w.field("output_records", m.output_records);
  w.field("output_bytes", m.output_bytes);
  w.end_object();
  w.end_object();
}

}  // namespace

std::string format_job_metrics_json(const JobResult& result,
                                    const std::string& job_name) {
  const auto& m = result.metrics;
  obs::JsonWriter w;
  w.begin_object();
  w.field("job", job_name);
  w.key("wall_ns").begin_object();
  w.field("job", m.job_wall_ns);
  w.field("map_phase", m.map_phase_wall_ns);
  w.field("reduce_phase", m.reduce_phase_wall_ns);
  w.end_object();
  w.field("map_tasks", m.map_tasks);
  w.field("reduce_tasks", m.reduce_tasks);
  w.field("task_attempts", m.task_attempts);
  w.field("tasks_retried", m.tasks_retried);

  w.key("work");
  write_task_metrics(w, m.work);
  w.key("map_work");
  write_task_metrics(w, m.map_work);
  w.key("support_work");
  write_task_metrics(w, m.support_work);
  w.key("reduce_work");
  write_task_metrics(w, m.reduce_work);

  w.key("intra_map_parallelism").begin_object();
  w.field("map_thread_wall_ns", m.map_thread_wall_ns);
  w.field("map_thread_idle_ns", m.map_thread_idle_ns);
  w.field("support_thread_wall_ns", m.support_thread_wall_ns);
  w.field("support_thread_idle_ns", m.support_thread_idle_ns);
  w.field("map_idle_fraction", m.map_idle_fraction());
  w.field("support_idle_fraction", m.support_idle_fraction());
  w.end_object();

  w.key("partition_skew").begin_object();
  w.field("partition_bytes_max", m.partition_bytes_max);
  w.field("partition_bytes_median", m.partition_bytes_median);
  w.field("partition_skew_ratio", m.partition_skew_ratio());
  w.end_object();

  w.key("reduce_task_details").begin_array();
  for (const auto& task : result.reduce_tasks) {
    w.begin_object();
    w.field("partition", task.partition);
    w.field("wall_ns", task.wall_ns);
    w.field("shuffled_bytes", task.shuffled_bytes);
    w.field("output_bytes", task.output_bytes);
    w.end_object();
  }
  w.end_array();

  w.key("map_task_details").begin_array();
  for (const auto& task : result.map_tasks) {
    w.begin_object();
    w.field("wall_ns", task.wall_ns);
    w.field("pipeline_wall_ns", task.pipeline_wall_ns);
    w.field("map_idle_ns", task.map_idle_ns);
    w.field("support_idle_ns", task.support_idle_ns);
    w.field("spills", task.spills);
    w.field("final_spill_threshold", task.final_spill_threshold);
    w.field("freq_sampling_fraction", task.freq_sampling_fraction);
    w.end_object();
  }
  w.end_array();

  w.field("trace_ring_dropped", m.trace_ring_dropped);
  w.field("telemetry_incomplete", m.telemetry_incomplete);
  if (!m.workers.empty()) {
    w.key("cluster").begin_object();
    w.field("worker_records_skew", m.worker_records_skew());
    w.key("workers").begin_array();
    for (const auto& worker : m.workers) {
      w.begin_object();
      w.field("worker_id", worker.worker_id);
      w.field("records", worker.records);
      w.field("bytes", worker.bytes);
      w.field("spills", worker.spills);
      w.field("tasks_completed", worker.tasks_completed);
      w.field("task_failures", worker.task_failures);
      w.field("trace_dropped", worker.trace_dropped);
      w.field("telemetry_complete", worker.telemetry_complete);
      w.key("task_latency_ns").begin_object();
      w.field("count", worker.task_latency_ns.count());
      w.field("mean", worker.task_latency_ns.mean());
      w.field("p50", worker.task_latency_ns.quantile(0.5));
      w.field("p90", worker.task_latency_ns.quantile(0.9));
      w.field("p99", worker.task_latency_ns.quantile(0.99));
      w.field("max", worker.task_latency_ns.max());
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  w.key("counters").begin_object();
  for (const auto& [name, value] : result.counters.all()) {
    w.field(name, value);
  }
  w.end_object();

  w.end_object();
  return w.take();
}

}  // namespace textmr::mr
