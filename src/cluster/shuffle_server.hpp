#pragma once

/// Per-worker shuffle service (DESIGN.md §14).
///
/// Each worker that commits map output keeps the spill run on its own
/// disk and serves partitions on demand: a reducer connects, sends one
/// kShuffleFetch{run_path, partition}, and receives either
/// kShuffleData{records, bytes} or kShuffleError{retryable, message}.
/// One request per connection — fetches are rare (runs × partitions per
/// job) and bulky, so connection reuse buys nothing and the
/// close-after-reply protocol keeps both ends trivially stateless.
///
/// Thread model: a single accept thread serves requests inline, so
/// concurrent fetchers are serialized (acceptable at this scale; the
/// client's timeout + retry covers a server stalled on a slow peer).
/// All mutable state is atomics — the accept thread and the owner
/// thread (stop()/counters) never need a lock.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "cluster/transport.hpp"
#include "io/spill_file.hpp"

namespace textmr::cluster {

class ShuffleServer {
 public:
  struct Options {
    Endpoint listen;               // port 0 = kernel-assigned
    std::string root;              // only run files under here are served
    io::SpillFormat spill_format = io::SpillFormat::kCompactVarint;
    std::int32_t io_timeout_ms = 5000;  // per-request recv/send budget
  };

  /// Binds + starts the accept thread; throws IoError if the bind fails.
  explicit ShuffleServer(Options options);
  ~ShuffleServer();

  ShuffleServer(const ShuffleServer&) = delete;
  ShuffleServer& operator=(const ShuffleServer&) = delete;

  /// Resolved listen address (port filled in after bind).
  const Endpoint& endpoint() const { return endpoint_; }

  /// Stops accepting and joins the accept thread. Idempotent.
  void stop();

  std::uint64_t bytes_served() const {
    return bytes_served_.load(std::memory_order_relaxed);
  }
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve(int fd);
  /// True when `path` resolves inside options_.root (no `..` escapes).
  bool path_allowed(const std::string& path) const;

  Options options_;
  Endpoint endpoint_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> bytes_served_{0};
  std::atomic<std::uint64_t> requests_served_{0};
  std::thread thread_;
};

}  // namespace textmr::cluster
