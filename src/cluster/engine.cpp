#include "cluster/engine.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "cluster/liveness.hpp"
#include "cluster/protocol.hpp"
#include "cluster/transport.hpp"
#include "cluster/worker.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "mr/task_runner.hpp"

namespace textmr::cluster {
namespace {

/// Coordinator-side view of one worker process.
struct WorkerHandle {
  std::uint32_t id = 0;
  Connection conn;
  pid_t pid = -1;       // -1 for external (non-forked) workers
  bool external = false;
  bool alive = true;
  bool reaped = false;
  FrameDecoder decoder;
  /// Shuffle-server endpoint advertised via kHello; invalid (port 0)
  /// until the hello arrives or when the worker serves no shuffle.
  Endpoint shuffle;
  // Current dispatch (coordinator's view; confirmed by heartbeats).
  bool busy = false;
  TaskKind kind = TaskKind::kNone;
  std::uint32_t task_id = 0;
  std::uint32_t attempt = 0;
  // Telemetry: clock handshake result and the latest cumulative stats
  // snapshot (heartbeats and trace chunks both refresh it).
  std::int64_t clock_offset_ns = 0;
  bool clock_synced = false;
  bool got_final_telemetry = false;
  WorkerMetrics stats;
};

/// Scheduler state of one task within a phase.
struct TaskState {
  bool done = false;
  std::uint32_t next_attempt = 0;  // attempt id generator
  std::uint32_t failures = 0;      // charged attempts (worker death is free)
  bool retried = false;
  bool speculated = false;
  std::uint32_t running = 0;  // attempts currently dispatched
};

constexpr int kPollMs = 5;

class Coordinator {
 public:
  Coordinator(const mr::JobSpec& spec, const ClusterConfig& config,
              TcpTransport* tcp)
      : spec_(spec),
        config_(config),
        detector_(config.straggler),
        tcp_(tcp),
        network_shuffle_(config.network_shuffle.value_or(
            config.transport == TransportKind::kTcp)),
        liveness_(config.liveness_timeout_ms, config.clock) {
    if (config.transport == TransportKind::kTcp) {
      transport_ = tcp_;
    } else {
      socketpair_ = make_socketpair_transport(config.io_timeout_ms);
      transport_ = socketpair_.get();
    }
  }

  mr::JobResult run();

 private:
  // ---- process management ----
  void spawn_workers();
  void accept_external_workers();
  /// Sends one frame to a live worker, translating every failure mode
  /// (EPIPE, timeout, injected fault) into worker death. Returns false
  /// when the worker is now dead.
  bool send_to(WorkerHandle& worker, std::string_view frame);
  void send_clock_probes();
  void broadcast_skew_plan();
  void on_worker_dead(WorkerHandle& worker);
  void kill_worker(WorkerHandle& worker);
  void kill_loser_attempts(TaskKind kind, std::uint32_t task);
  void shutdown_workers();
  void kill_and_reap_all();

  // ---- scheduling ----
  void run_phase(TaskKind kind, std::uint32_t num_tasks);
  void dispatch_ready(TaskKind kind);
  bool dispatch_to(WorkerHandle& worker, TaskKind kind, std::uint32_t task);
  void pump_events();
  void drain_worker(WorkerHandle& worker);
  void handle_frame(WorkerHandle& worker, const std::string& frame);
  void check_stragglers(TaskKind kind);
  void fail_job(std::exception_ptr error);

  std::uint32_t live_workers() const;

  const mr::JobSpec& spec_;
  const ClusterConfig& config_;
  StragglerDetector detector_;

  // Transport machinery (DESIGN.md §14). tcp_ outlives the coordinator
  // (owned by ClusterEngine so tests can read the listener endpoint
  // before run()); the socketpair transport is per-run.
  TcpTransport* tcp_ = nullptr;
  std::unique_ptr<Transport> socketpair_;
  Transport* transport_ = nullptr;
  const bool network_shuffle_;
  LivenessTracker liveness_;

  // Skew plan (DESIGN.md §12): computed once on the coordinator and
  // broadcast verbatim so every worker routes identically.
  mr::SkewPlan skew_plan_;
  const mr::SkewPlan* plan() const {
    return skew_plan_.empty() ? nullptr : &skew_plan_;
  }

  std::vector<WorkerHandle> workers_;
  std::unique_ptr<obs::TraceCollector> collector_;
  obs::TraceBuffer* driver_trace_ = nullptr;
  std::vector<obs::TraceData> worker_traces_;

  // Phase-scoped scheduler state. phase_ is kNone outside run_phase, so
  // a speculative loser reporting after its phase ended is recognized as
  // stale instead of indexing the next phase's task table.
  TaskKind phase_ = TaskKind::kNone;
  std::vector<TaskState> tasks_;
  std::deque<std::uint32_t> queue_;  // task ids awaiting (re)dispatch
  std::uint32_t done_count_ = 0;
  std::exception_ptr job_error_;

  // Results.
  std::vector<mr::MapTaskResult> map_results_;
  std::vector<mr::ReduceTaskResult> reduce_results_;
  std::vector<io::SpillRunInfo> map_outputs_;
  // Which worker's shuffle server owns each map task's winning run,
  // parallel to map_outputs_. Invalid endpoint = read via shared FS
  // (owner died, or network shuffle disabled).
  std::vector<Endpoint> map_output_sources_;

  // Accounting.
  std::uint64_t task_attempts_ = 0;
  std::uint64_t tasks_retried_ = 0;
  std::uint64_t speculative_attempts_ = 0;

  // Set once kShutdown frames go out: a worker hanging up after that is
  // a clean exit, not a death worth a warning or a trace event.
  bool shutting_down_ = false;
};

void Coordinator::spawn_workers() {
  workers_.reserve(config_.num_workers);
  const std::uint32_t forked = config_.num_workers - config_.external_workers;
  for (std::uint32_t w = 0; w < forked; ++w) {
    // Both channel ends exist before fork (TCP pairs connect+accept
    // against the coordinator's own listener), so the child inherits an
    // established, already-identified connection — no handshake needed.
    Transport::WorkerChannel channel = transport_->make_worker_channel();
    // Flush stdio so the child doesn't replay buffered output.
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(channel.child_fd);
      kill_and_reap_all();
      throw IoError("fork failed: " + std::string(strerror(errno)));
    }
    if (pid == 0) {
      // Child: become worker `w`. Drop the coordinator ends — including
      // the channels of previously forked siblings, otherwise this
      // process would hold them open and mask a sibling's death (EOF) —
      // and any transport bookkeeping fds (the TCP listener).
      channel.coordinator.close();
      for (WorkerHandle& sibling : workers_) sibling.conn.close();
      transport_->on_child_fork(channel.child_fd);
      if (config_.worker_init) config_.worker_init(w);
      WorkerContext ctx;
      ctx.fd = channel.child_fd;
      ctx.worker_id = w;
      ctx.heartbeat_interval_ms = config_.heartbeat_interval_ms;
      ctx.frame_format = transport_->frame_format();
      ctx.shuffle_enabled = network_shuffle_;
      ctx.io_timeout_ms = config_.io_timeout_ms;
      ctx.idle_timeout_ms = config_.worker_idle_timeout_ms;
      const int code = worker_main(ctx, spec_);
      // _exit: a forked clone must not run the parent's atexit chain or
      // gtest teardown; its heap intentionally dies with it.
      ::_exit(code);
    }
    ::close(channel.child_fd);
    WorkerHandle handle;
    handle.id = w;
    handle.conn = std::move(channel.coordinator);
    handle.pid = pid;
    handle.decoder = FrameDecoder(transport_->frame_format());
    workers_.push_back(std::move(handle));
    liveness_.note_activity(w);
    if (config_.on_worker_spawn) config_.on_worker_spawn(w, pid);
  }
  accept_external_workers();
}

/// Adopts externally-started workers: accept their TCP connections and
/// assign worker ids via kWelcome. The worker replies with kHello
/// (shuffle endpoint), handled by the normal event pump.
void Coordinator::accept_external_workers() {
  if (config_.external_workers == 0) return;
  const std::uint32_t forked = config_.num_workers - config_.external_workers;
  for (std::uint32_t w = forked; w < config_.num_workers; ++w) {
    WorkerHandle handle;
    handle.id = w;
    handle.external = true;
    handle.pid = -1;
    handle.decoder = FrameDecoder(FrameFormat::kChecksummed);
    try {
      handle.conn = tcp_->accept_worker(config_.accept_timeout_ms);
    } catch (const IoError& e) {
      kill_and_reap_all();
      throw IoError("external worker " + std::to_string(w) +
                    " never connected: " + e.what());
    }
    WelcomeMsg welcome;
    welcome.worker_id = w;
    welcome.heartbeat_interval_ms = config_.heartbeat_interval_ms;
    bool sent = false;
    try {
      sent = handle.conn.send(encode_welcome(welcome));
    } catch (const IoError&) {
      sent = false;
    }
    if (!sent) {
      kill_and_reap_all();
      throw IoError("external worker " + std::to_string(w) +
                    " hung up during the welcome handshake");
    }
    workers_.push_back(std::move(handle));
    liveness_.note_activity(w);
    if (config_.on_worker_spawn) config_.on_worker_spawn(w, -1);
  }
}

bool Coordinator::send_to(WorkerHandle& worker, std::string_view frame) {
  if (!worker.alive) return false;
  bool sent = false;
  try {
    sent = worker.conn.send(frame);
  } catch (const IoError&) {
    sent = false;
  }
  if (!sent) on_worker_dead(worker);
  return sent;
}

/// Clock handshake, one probe per worker right after spawn. The worker
/// echoes the probe with its own clock; handle_frame computes the offset
/// used to rebase that worker's trace chunks onto the coordinator
/// timeline before the merge. A worker that dies before replying simply
/// keeps offset 0 — correct for forked workers sharing CLOCK_MONOTONIC.
void Coordinator::send_clock_probes() {
  for (auto& worker : workers_) {
    if (!worker.alive) continue;
    ClockProbeMsg probe;
    probe.t_send = monotonic_ns();
    send_to(worker, encode_clock_probe(probe));
  }
}

/// Skew-plan broadcast, right after the clock handshake: every worker
/// must hold the identical plan before the first map dispatch, or its
/// partition routing would diverge from its siblings'. Only sent when
/// the plan is non-empty — plan-less workers default to hash routing.
void Coordinator::broadcast_skew_plan() {
  const std::string frame = encode_skew_plan(skew_plan_);
  for (auto& worker : workers_) {
    send_to(worker, frame);
  }
}

std::uint32_t Coordinator::live_workers() const {
  std::uint32_t n = 0;
  for (const auto& worker : workers_) n += worker.alive ? 1 : 0;
  return n;
}

void Coordinator::fail_job(std::exception_ptr error) {
  if (!job_error_) job_error_ = std::move(error);
}

void Coordinator::on_worker_dead(WorkerHandle& worker) {
  if (!worker.alive) return;
  worker.alive = false;
  worker.conn.close();
  liveness_.forget(worker.id);
  if (shutting_down_) {
    TEXTMR_LOG(kDebug) << "cluster worker " << worker.id << " (pid "
                       << worker.pid << ") exited";
  } else {
    TEXTMR_LOG(kWarn) << "cluster worker " << worker.id << " (pid "
                      << worker.pid << ") died";
    obs::record_instant(driver_trace_, "cluster", "worker_death", "worker",
                        static_cast<double>(worker.id));
  }
  if (worker.busy) {
    detector_.on_finish(worker.kind, worker.task_id, worker.attempt);
    // Same stale-attempt guard as handle_frame: a worker still busy with
    // a previous phase's task (a speculative loser) dying later must not
    // index the current phase's task table — its task id belongs to a
    // scheduler state that no longer exists.
    if (worker.kind == phase_) {
      TaskState& task = tasks_[worker.task_id];
      task.running -= 1;
      // Worker death is the machine's fault, not the task's: re-queue
      // without charging max_task_attempts (Hadoop reschedules the same
      // way). The fresh dispatch gets a fresh attempt id.
      if (!task.done) queue_.push_back(worker.task_id);
    }
    worker.busy = false;
  }
}

void Coordinator::kill_worker(WorkerHandle& worker) {
  if (!worker.alive) return;
  if (worker.external) {
    // No pid to signal: closing the control channel is the kill. The
    // worker notices EOF (or the idle timeout) after its current task
    // and exits; a loser attempt's late result has nowhere to go.
    on_worker_dead(worker);
    return;
  }
  ::kill(worker.pid, SIGKILL);
  int status = 0;
  while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
  }
  worker.reaped = true;
  on_worker_dead(worker);
}

/// A task's winning attempt just committed: every other worker still
/// running a duplicate attempt of it is doing provably useless work and
/// would stall job completion (the shutdown drain would wait out its
/// remaining runtime). Kill those workers — Hadoop's backup-task kill,
/// which for one-slot worker processes means killing the process — and
/// drop the dead attempts' scratch files. Call with the task already
/// marked done so on_worker_dead() does not re-queue it.
void Coordinator::kill_loser_attempts(TaskKind kind, std::uint32_t task) {
  for (auto& worker : workers_) {
    if (!worker.alive || !worker.busy) continue;
    if (worker.kind != kind || worker.task_id != task) continue;
    const std::uint32_t attempt = worker.attempt;
    TEXTMR_LOG(kWarn) << "killing worker " << worker.id
                      << " running lost duplicate of "
                      << (kind == TaskKind::kMap ? "map" : "reduce")
                      << " task " << task << " attempt " << attempt;
    kill_worker(worker);
    if (kind == TaskKind::kMap) {
      mr::cleanup_map_attempt(spec_, task, attempt);
    } else {
      mr::cleanup_reduce_attempt(
          mr::reduce_task_output_path(spec_, plan(), task), attempt);
    }
  }
}

bool Coordinator::dispatch_to(WorkerHandle& worker, TaskKind kind,
                              std::uint32_t task) {
  TaskState& state = tasks_[task];
  const std::uint32_t attempt = state.next_attempt++;
  std::string frame;
  if (kind == TaskKind::kMap) {
    frame = encode_run_task(MsgType::kRunMap, RunTaskMsg{task, attempt});
  } else {
    RunReduceMsg msg;
    msg.partition = task;
    msg.attempt = attempt;
    msg.map_outputs = map_outputs_;
    // Network shuffle: tell the reducer which worker's shuffle server
    // owns each run. An invalid endpoint (owner died before or after
    // committing) falls back to the shared-filesystem read.
    if (network_shuffle_) msg.sources = map_output_sources_;
    frame = encode_run_reduce(msg);
  }
  if (!send_to(worker, frame)) {
    state.next_attempt = attempt;  // attempt never started
    return false;
  }
  worker.busy = true;
  worker.kind = kind;
  worker.task_id = task;
  worker.attempt = attempt;
  state.running += 1;
  task_attempts_ += 1;
  detector_.on_dispatch(kind, task, attempt);
  return true;
}

void Coordinator::dispatch_ready(TaskKind kind) {
  for (auto& worker : workers_) {
    if (queue_.empty()) return;
    if (!worker.alive || worker.busy) continue;
    // Take the oldest queued task that still needs running; drop stale
    // entries for tasks that completed while queued. A speculative
    // duplicate automatically lands on a different worker than the
    // straggling attempt: that worker is busy, and busy workers are
    // never dispatched to.
    std::optional<std::uint32_t> chosen;
    while (!queue_.empty()) {
      const std::uint32_t candidate = queue_.front();
      queue_.pop_front();
      if (tasks_[candidate].done) continue;
      chosen = candidate;
      break;
    }
    if (!chosen.has_value()) continue;
    if (!dispatch_to(worker, kind, *chosen)) {
      // The worker died between poll and dispatch: the task never left
      // the coordinator, so put it back at the head for the next worker.
      queue_.push_front(*chosen);
    }
  }
}

void Coordinator::handle_frame(WorkerHandle& worker,
                               const std::string& frame) {
  WireReader r(frame);
  const MsgType type = static_cast<MsgType>(r.u8());
  // Any frame is proof of life — heartbeats are the steady signal, but
  // a worker busy shipping a huge trace chunk is just as alive.
  liveness_.note_activity(worker.id);
  switch (type) {
    case MsgType::kHeartbeat: {
      HeartbeatMsg msg = decode_heartbeat(r);
      worker.stats = std::move(msg.stats);
      if (msg.kind != TaskKind::kNone) {
        detector_.on_beat(msg.kind, msg.id, msg.attempt, msg.progress);
      }
      return;
    }
    case MsgType::kHello: {
      const HelloMsg msg = decode_hello(r);
      worker.shuffle = msg.shuffle;
      TEXTMR_LOG(kDebug) << "worker " << worker.id
                         << " serves shuffle at "
                         << worker.shuffle.to_string();
      return;
    }
    case MsgType::kClockSync: {
      const ClockSyncMsg msg = decode_clock_sync(r);
      worker.clock_offset_ns =
          estimate_clock_offset(msg.t_probe, monotonic_ns(), msg.t_worker);
      worker.clock_synced = true;
      obs::record_instant(driver_trace_, "cluster", "clock_sync", "worker",
                          static_cast<double>(worker.id), "offset_ns",
                          static_cast<double>(worker.clock_offset_ns));
      return;
    }
    case MsgType::kTraceChunk: {
      TraceChunkMsg msg = decode_trace_chunk(r);
      worker.stats = std::move(msg.stats);
      if (msg.final_chunk) worker.got_final_telemetry = true;
      if (msg.trace.enabled && worker.id < worker_traces_.size()) {
        obs::merge_trace(worker_traces_[worker.id], std::move(msg.trace));
      }
      return;
    }
    case MsgType::kMapDone: {
      std::uint32_t task = 0;
      std::uint32_t attempt = 0;
      mr::MapTaskResult result;
      decode_map_done(r, task, attempt, result);
      worker.busy = false;
      const std::uint64_t duration =
          detector_.on_finish(TaskKind::kMap, task, attempt);
      if (phase_ != TaskKind::kMap) {
        // A speculative loser still running when the map phase ended,
        // now finishing during the reduce phase or shutdown: the phase's
        // scheduler state is gone, only the loser's files need dropping.
        mr::cleanup_map_attempt(spec_, task, attempt);
        return;
      }
      TaskState& state = tasks_[task];
      state.running -= 1;
      if (state.done) {
        // A speculative (or re-queued) duplicate lost the race: its run
        // file is redundant — drop the attempt's scratch files.
        mr::cleanup_map_attempt(spec_, task, attempt);
        return;
      }
      state.done = true;
      ++done_count_;
      detector_.note_completed(TaskKind::kMap, duration);
      map_results_[task] = std::move(result);
      // The winner's shuffle server owns this run; reducers pull it
      // from there (invalid endpoint when shuffle is off — reducers
      // then read the run through the shared filesystem).
      map_output_sources_[task] = worker.shuffle;
      kill_loser_attempts(TaskKind::kMap, task);
      return;
    }
    case MsgType::kReduceDone: {
      std::uint32_t partition = 0;
      std::uint32_t attempt = 0;
      mr::ReduceTaskResult result;
      decode_reduce_done(r, partition, attempt, result);
      worker.busy = false;
      const std::uint64_t duration =
          detector_.on_finish(TaskKind::kReduce, partition, attempt);
      // A post-phase reduce loser already committed byte-identical output
      // through the atomic rename; nothing to clean up.
      if (phase_ != TaskKind::kReduce) return;
      TaskState& state = tasks_[partition];
      state.running -= 1;
      if (state.done) return;  // duplicate committed identical bytes
      state.done = true;
      ++done_count_;
      detector_.note_completed(TaskKind::kReduce, duration);
      reduce_results_[partition] = std::move(result);
      kill_loser_attempts(TaskKind::kReduce, partition);
      return;
    }
    case MsgType::kTaskFailed: {
      const TaskFailedMsg msg = decode_task_failed(r);
      worker.busy = false;
      detector_.on_finish(msg.kind, msg.id, msg.attempt);
      if (phase_ != msg.kind) return;  // failure of a post-phase loser
      TaskState& state = tasks_[msg.id];
      state.running -= 1;
      if (state.done) return;  // a sibling attempt already finished
      const char* kind_name = msg.kind == TaskKind::kMap ? "map" : "reduce";
      if (!msg.retryable) {
        fail_job(std::make_exception_ptr(TaskFailedError(
            std::string(kind_name) + " task " + std::to_string(msg.id) +
            " failed permanently: " + msg.message)));
        return;
      }
      state.failures += 1;
      if (state.failures >= spec_.max_task_attempts) {
        fail_job(std::make_exception_ptr(TaskFailedError(
            std::string(kind_name) + " task " + std::to_string(msg.id) +
            " failed after " + std::to_string(state.failures) +
            (state.failures == 1 ? " attempt: " : " attempts: ") +
            msg.message)));
        return;
      }
      TEXTMR_LOG(kWarn) << kind_name << " task " << msg.id << " attempt "
                        << msg.attempt << " failed (" << msg.message
                        << "); retrying";
      obs::record_instant(driver_trace_, "retry", "task_retry", "task",
                          static_cast<double>(msg.id), "failed_attempt",
                          static_cast<double>(msg.attempt));
      if (!state.retried) {
        state.retried = true;
        tasks_retried_ += 1;
      }
      queue_.push_back(msg.id);
      return;
    }
    // Coordinator-to-worker and shuffle-channel messages, listed
    // explicitly so adding a MsgType forces a decision here (-Wswitch +
    // switch-exhaustiveness). The kShuffle* family never belongs on the
    // control channel — it lives on dedicated server connections.
    case MsgType::kRunMap:
    case MsgType::kRunReduce:
    case MsgType::kShutdown:
    case MsgType::kClockProbe:
    case MsgType::kSkewPlan:
    case MsgType::kWelcome:
    case MsgType::kShuffleFetch:
    case MsgType::kShuffleData:
    case MsgType::kShuffleError:
      TEXTMR_LOG(kWarn) << "coordinator: unexpected message type "
                        << static_cast<int>(type) << " from worker "
                        << worker.id;
      return;
  }
  TEXTMR_LOG(kWarn) << "coordinator: unknown message type "
                    << static_cast<int>(type) << " from worker " << worker.id;
}

void Coordinator::drain_worker(WorkerHandle& worker) {
  bool open = false;
  try {
    open = worker.conn.drain(worker.decoder);
    // Flush complete frames — including, on EOF, any that raced the
    // death. A corrupted stream (bad checksum, oversized frame) throws
    // out of next(): the channel is desynchronized beyond repair, which
    // is indistinguishable from a dead worker.
    while (auto frame = worker.decoder.next()) {
      handle_frame(worker, *frame);
    }
  } catch (const IoError& e) {
    TEXTMR_LOG(kWarn) << "cluster worker " << worker.id
                      << " channel unusable: " << e.what();
    open = false;
  }
  if (!open) on_worker_dead(worker);
}

void Coordinator::pump_events() {
  std::vector<pollfd> fds;
  std::vector<WorkerHandle*> owners;
  for (auto& worker : workers_) {
    if (!worker.alive) continue;
    fds.push_back(pollfd{worker.conn.fd(), POLLIN, 0});
    owners.push_back(&worker);
  }
  if (fds.empty()) return;
  const int rc = ::poll(fds.data(), fds.size(), kPollMs);
  if (rc < 0) {
    if (errno == EINTR) return;
    throw IoError("cluster poll failed: " + std::string(strerror(errno)));
  }
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    // A winner draining earlier in this loop may have killed this worker
    // (kill_loser_attempts); its fd is gone, skip it.
    if (!owners[i]->alive) continue;
    if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      drain_worker(*owners[i]);
    }
  }
  // Liveness: a TCP peer that lost power never EOFs — silence is the
  // only signal. Workers whose deadline passed are declared dead (and
  // SIGKILLed when forked, in case the process is alive but wedged).
  if (liveness_.enabled()) {
    for (auto& worker : workers_) {
      if (!worker.alive || !liveness_.expired(worker.id)) continue;
      TEXTMR_LOG(kWarn) << "cluster worker " << worker.id
                        << " silent past liveness timeout; declaring dead";
      kill_worker(worker);
    }
  }
}

void Coordinator::check_stragglers(TaskKind kind) {
  if (!config_.speculation) return;
  for (const auto& straggler : detector_.take_stragglers()) {
    if (straggler.kind != kind) continue;
    TaskState& state = tasks_[straggler.id];
    if (state.done || state.speculated) continue;
    state.speculated = true;
    speculative_attempts_ += 1;
    TEXTMR_LOG(kWarn) << "speculating "
                      << (kind == TaskKind::kMap ? "map" : "reduce")
                      << " task " << straggler.id
                      << " (straggling attempt " << straggler.attempt << ")";
    obs::record_instant(driver_trace_, "cluster", "speculative_attempt",
                        "task", static_cast<double>(straggler.id),
                        "straggling_attempt",
                        static_cast<double>(straggler.attempt));
    queue_.push_back(straggler.id);
  }
}

void Coordinator::run_phase(TaskKind kind, std::uint32_t num_tasks) {
  phase_ = kind;
  tasks_.assign(num_tasks, TaskState{});
  queue_.clear();
  for (std::uint32_t t = 0; t < num_tasks; ++t) queue_.push_back(t);
  done_count_ = 0;

  while (done_count_ < num_tasks && !job_error_) {
    if (live_workers() == 0) {
      fail_job(std::make_exception_ptr(
          TaskFailedError("every cluster worker died")));
      break;
    }
    dispatch_ready(kind);
    pump_events();
    check_stragglers(kind);
  }
  phase_ = TaskKind::kNone;
  if (job_error_) {
    shutdown_workers();
    std::rethrow_exception(job_error_);
  }
}

void Coordinator::shutdown_workers() {
  shutting_down_ = true;
  const std::string shutdown_frame = [] {
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(MsgType::kShutdown));
    return w.take();
  }();
  for (auto& worker : workers_) {
    send_to(worker, shutdown_frame);
  }
  // Drain until every worker EOFs (shipping its final trace chunks and
  // stats on the way out) or the grace period expires — a still-running
  // loser attempt can hold a worker busy past the job's useful lifetime.
  const std::uint64_t deadline =
      monotonic_ns() + config_.shutdown_grace_ms * 1000000ull;
  while (live_workers() > 0 && monotonic_ns() < deadline) {
    pump_events();
  }
  kill_and_reap_all();
}

void Coordinator::kill_and_reap_all() {
  for (auto& worker : workers_) {
    if (worker.alive) {
      // External workers have no pid here; dropping the channel is the
      // strongest signal the coordinator can send them.
      if (!worker.external) ::kill(worker.pid, SIGKILL);
      on_worker_dead(worker);
    }
  }
  for (auto& worker : workers_) {
    if (worker.external || worker.reaped || worker.pid <= 0) continue;
    int status = 0;
    while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
    }
    worker.reaped = true;
  }
}

mr::JobResult Coordinator::run() {
  mr::validate_job(spec_);
  if (config_.num_workers == 0) {
    throw ConfigError("cluster needs >= 1 worker");
  }
  if (config_.external_workers > config_.num_workers) {
    throw ConfigError("external_workers exceeds num_workers");
  }
  if (config_.external_workers > 0 &&
      config_.transport != TransportKind::kTcp) {
    throw ConfigError("external workers require the tcp transport");
  }
  std::filesystem::create_directories(spec_.scratch_dir);
  std::filesystem::create_directories(spec_.output_dir);

  mr::JobResult result;
  const std::uint64_t job_start = monotonic_ns();

  // Skew plan before fork: the sampling pre-pass runs once here, and the
  // children inherit nothing — they receive the plan as a broadcast
  // frame after the clock handshake.
  skew_plan_ = mr::build_skew_plan(spec_);
  const std::uint32_t num_physical_reducers =
      plan() != nullptr ? skew_plan_.num_physical() : spec_.num_reducers;

  // Fork before any coordinator thread or collector exists: the children
  // must be single-threaded clones.
  spawn_workers();
  worker_traces_.assign(config_.num_workers, obs::TraceData{});

  if (spec_.trace.enabled) {
    collector_ = std::make_unique<obs::TraceCollector>(spec_.trace);
    collector_->set_job_name(spec_.name);
    driver_trace_ =
        collector_->make_buffer(obs::kDriverPid, 0, "coordinator", "driver");
  }
  send_clock_probes();
  if (plan() != nullptr) {
    std::uint64_t split_entries = 0;
    for (const auto& entry : skew_plan_.entries) {
      if (entry.mode == mr::SkewPlan::Mode::kSplit) ++split_entries;
    }
    obs::record_instant(driver_trace_, "skew", "skew_plan", "heavy_keys",
                        static_cast<double>(skew_plan_.entries.size()),
                        "split_keys", static_cast<double>(split_entries),
                        "physical_partitions",
                        static_cast<double>(num_physical_reducers));
    broadcast_skew_plan();
  }

  try {
    // ---- map phase ------------------------------------------------------
    obs::SpanTimer map_span(driver_trace_, "phase", "map_phase");
    const std::uint64_t map_start = monotonic_ns();
    const std::uint32_t num_map_tasks =
        static_cast<std::uint32_t>(spec_.inputs.size());
    map_results_.assign(num_map_tasks, mr::MapTaskResult{});
    map_output_sources_.assign(num_map_tasks, Endpoint{});
    run_phase(TaskKind::kMap, num_map_tasks);
    map_span.done();
    result.metrics.map_phase_wall_ns = monotonic_ns() - map_start;
    result.metrics.map_tasks = num_map_tasks;

    // Ordered by map task id — required for byte-identical reduce merges.
    map_outputs_.clear();
    map_outputs_.reserve(num_map_tasks);
    for (auto& task_result : map_results_) {
      map_outputs_.push_back(task_result.output);
      mr::fold_map_result(task_result, result);
    }

    // ---- reduce phase ---------------------------------------------------
    obs::SpanTimer reduce_span(driver_trace_, "phase", "reduce_phase");
    const std::uint64_t reduce_start = monotonic_ns();
    reduce_results_.assign(num_physical_reducers, mr::ReduceTaskResult{});
    run_phase(TaskKind::kReduce, num_physical_reducers);
    reduce_span.done();
    result.metrics.reduce_phase_wall_ns = monotonic_ns() - reduce_start;
    result.metrics.reduce_tasks = num_physical_reducers;
  } catch (...) {
    kill_and_reap_all();
    throw;
  }

  for (auto& reduce_result : reduce_results_) {
    mr::fold_reduce_result(reduce_result, result,
                           /*include_output=*/plan() == nullptr);
  }
  mr::note_partition_bytes(result, driver_trace_);
  if (plan() != nullptr) {
    mr::finalize_skew_outputs(spec_, skew_plan_, result, driver_trace_);
  }
  result.metrics.task_attempts = task_attempts_;
  result.metrics.tasks_retried = tasks_retried_;
  result.counters.increment("cluster.speculative_attempts",
                            speculative_attempts_);

  shutdown_workers();

  if (!spec_.keep_intermediates) {
    for (const auto& run : map_outputs_) {
      std::error_code ec;
      std::filesystem::remove(run.path, ec);
    }
  }

  result.metrics.job_wall_ns = monotonic_ns() - job_start;

  // Fold each worker's telemetry into the job result. A worker that died
  // before its final chunk (SIGKILL, crash) leaves whatever chunks it
  // did ship plus a telemetry_incomplete flag — partial telemetry is
  // reported, never a job failure.
  for (const auto& worker : workers_) {
    mr::WorkerTelemetry telemetry;
    telemetry.worker_id = worker.id;
    telemetry.records = worker.stats.records;
    telemetry.bytes = worker.stats.bytes;
    telemetry.spills = worker.stats.spills;
    telemetry.tasks_completed = worker.stats.tasks_completed;
    telemetry.task_failures = worker.stats.task_failures;
    telemetry.trace_dropped = worker.stats.trace_dropped;
    telemetry.task_latency_ns = worker.stats.task_latency_ns;
    telemetry.telemetry_complete = worker.got_final_telemetry;
    if (!worker.got_final_telemetry) {
      result.metrics.telemetry_incomplete = true;
    }
    result.metrics.workers.push_back(std::move(telemetry));
  }

  if (collector_ != nullptr) {
    result.trace = collector_->finish();
    for (std::size_t w = 0; w < worker_traces_.size(); ++w) {
      // Rebase onto the coordinator clock before merging so one merged
      // file holds a single consistent timeline.
      obs::rebase_trace(worker_traces_[w], workers_[w].clock_offset_ns);
      obs::merge_trace(result.trace, std::move(worker_traces_[w]));
    }
    worker_traces_.clear();
    result.trace.incomplete =
        result.trace.incomplete || result.metrics.telemetry_incomplete;
    result.metrics.trace_ring_dropped = result.trace.dropped_events;
  }
  return result;
}

}  // namespace

ClusterEngine::ClusterEngine(ClusterConfig config)
    : config_(std::move(config)) {
  // The TCP listener is engine-scoped (not per-run) so callers can read
  // the resolved port — and point external workers at it — before run().
  if (config_.transport == TransportKind::kTcp) {
    tcp_ = make_tcp_transport(config_.listen, config_.io_timeout_ms);
  }
}

ClusterEngine::~ClusterEngine() = default;

const Endpoint* ClusterEngine::listen_endpoint() const {
  return tcp_ != nullptr ? &tcp_->listen_endpoint() : nullptr;
}

mr::JobResult ClusterEngine::run(const mr::JobSpec& spec) {
  Coordinator coordinator(spec, config_, tcp_.get());
  return coordinator.run();
}

}  // namespace textmr::cluster
