#pragma once

/// Worker transport abstraction (DESIGN.md §14).
///
/// The coordinator talks to each worker over a `Connection` — a framed,
/// bidirectional byte channel. How that channel is created is the
/// `Transport`'s business:
///
///   - SocketpairTransport: the original one-host shape. A
///     socketpair(AF_UNIX) is created before fork(); the child inherits
///     one end. Frames use FrameFormat::kLegacy (no checksum — the
///     kernel moves the bytes, nothing can corrupt them).
///   - TcpTransport: real sockets on a loopback/LAN listener. The
///     coordinator pairs each forked worker deterministically by
///     connecting to its own listener immediately before the fork, so
///     the child inherits an established, identified TCP connection.
///     External workers (started with `textmr_cli worker --connect`)
///     dial in and are adopted via accept_worker(). Frames use
///     FrameFormat::kChecksummed ([len][crc32][payload]).
///
/// Connections never own protocol state beyond the frame format and a
/// default I/O timeout; message semantics stay in protocol.hpp and the
/// engine/worker loops.

#include <cstdint>
#include <memory>
#include <string>

#include "cluster/protocol.hpp"

namespace textmr::cluster {

enum class TransportKind : std::uint8_t { kSocketpair, kTcp };

const char* transport_kind_name(TransportKind kind);

/// Parses "socketpair" / "tcp"; throws ConfigError on anything else.
TransportKind parse_transport_kind(const std::string& name);

/// One framed channel between coordinator and worker. Thin RAII wrapper
/// over an fd + frame format + default timeout; all I/O goes through the
/// protocol.hpp frame functions (and therefore through the net.send /
/// net.recv failpoints).
class Connection {
 public:
  Connection() = default;
  Connection(int fd, FrameFormat format, std::int32_t io_timeout_ms = -1)
      : fd_(fd), format_(format), io_timeout_ms_(io_timeout_ms) {}
  ~Connection() { close(); }

  Connection(Connection&& other) noexcept { *this = std::move(other); }
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  FrameFormat format() const { return format_; }
  std::int32_t io_timeout_ms() const { return io_timeout_ms_; }

  /// Sends one frame; false when the peer is gone. Uses the default
  /// timeout unless `timeout_ms` overrides it (-1 = wait forever).
  bool send(std::string_view payload) const {
    return send_frame(fd_, payload, format_, io_timeout_ms_);
  }
  bool send(std::string_view payload, std::int32_t timeout_ms) const {
    return send_frame(fd_, payload, format_, timeout_ms);
  }

  /// Receives one frame; nullopt on clean EOF. Throws IoError on
  /// timeout, truncation, or checksum mismatch.
  std::optional<std::string> recv() const {
    return recv_frame(fd_, format_, io_timeout_ms_);
  }
  std::optional<std::string> recv(std::int32_t timeout_ms) const {
    return recv_frame(fd_, format_, timeout_ms);
  }

  /// Non-blocking drain into `decoder` for the coordinator poll loop.
  /// Returns false when the peer closed or the stream is corrupt
  /// (checksum/length violations surface as IoError from the decoder).
  bool drain(FrameDecoder& decoder) const;

  void close();
  /// Relinquishes ownership of the fd without closing it (used when a
  /// forked child inherits the descriptor).
  int release_fd();

 private:
  int fd_ = -1;
  FrameFormat format_ = FrameFormat::kLegacy;
  std::int32_t io_timeout_ms_ = -1;
};

/// Factory for worker channels. `make_worker_channel` is called by the
/// coordinator immediately BEFORE fork(); it returns the coordinator end
/// and the fd the child should adopt after fork.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;
  const char* name() const { return transport_kind_name(kind()); }
  virtual FrameFormat frame_format() const = 0;

  struct WorkerChannel {
    Connection coordinator;  // coordinator-side end
    int child_fd = -1;       // fd the forked child keeps (already open)
  };

  /// Creates a paired channel for a worker about to be forked.
  virtual WorkerChannel make_worker_channel() = 0;

  /// Called in the forked child: closes listener/bookkeeping fds that
  /// must not leak into the worker process. `keep_fd` is the child's
  /// channel fd and is left open.
  virtual void on_child_fork(int keep_fd) = 0;
};

std::unique_ptr<Transport> make_socketpair_transport(
    std::int32_t io_timeout_ms = -1);

// ---- TCP helpers (also used by the shuffle server/client) -----------------

/// Binds + listens on `endpoint` (port 0 = kernel-assigned). Returns the
/// listening fd; throws IoError on failure.
int tcp_listen(const Endpoint& endpoint, int backlog = 64);

/// Connects to `endpoint` with a connect timeout. Honors the
/// `net.connect` failpoint. Throws IoError on refusal/timeout.
int tcp_connect(const Endpoint& endpoint, std::int32_t timeout_ms = -1);

/// Accepts one connection from `listen_fd`, waiting at most
/// `timeout_ms` (-1 = forever). Throws IoError on timeout or error.
int tcp_accept(int listen_fd, std::int32_t timeout_ms = -1);

/// The locally-bound address of a socket (resolves port 0 after bind).
Endpoint local_endpoint(int fd);

class TcpTransport final : public Transport {
 public:
  /// Listens on `listen` immediately (so listen_endpoint() is valid
  /// before any worker exists).
  explicit TcpTransport(const Endpoint& listen,
                        std::int32_t io_timeout_ms = -1);
  ~TcpTransport() override;

  TransportKind kind() const override { return TransportKind::kTcp; }
  FrameFormat frame_format() const override {
    return FrameFormat::kChecksummed;
  }

  WorkerChannel make_worker_channel() override;
  void on_child_fork(int keep_fd) override;

  /// Where external workers should dial in.
  const Endpoint& listen_endpoint() const { return endpoint_; }

  /// Adopts one externally-started worker: accepts a connection on the
  /// listener. The caller then runs the welcome/hello handshake.
  Connection accept_worker(std::int32_t timeout_ms);

 private:
  Endpoint endpoint_;
  int listen_fd_ = -1;
  std::int32_t io_timeout_ms_ = -1;
};

std::unique_ptr<TcpTransport> make_tcp_transport(const Endpoint& listen,
                                                 std::int32_t io_timeout_ms =
                                                     -1);

}  // namespace textmr::cluster
