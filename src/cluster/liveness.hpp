#pragma once

/// Coordinator-side worker liveness tracking (DESIGN.md §14).
///
/// Over a socketpair a dead worker is unmissable: the kernel delivers
/// EOF/SIGCHLD immediately. Over TCP a peer that loses power (or sits
/// behind a dropped route) just goes silent — the coordinator's poll
/// loop would wait forever. The LivenessTracker turns silence into
/// worker death: every frame (heartbeats included) refreshes the
/// worker's deadline; `expired()` reports workers whose deadline passed.
///
/// Single-threaded by design: only the coordinator poll loop touches it,
/// so there is no lock. The Clock injection makes the timeout math
/// deterministic under test (ManualClock).

#include <cstdint>
#include <unordered_map>

#include "common/clock.hpp"

namespace textmr::cluster {

class LivenessTracker {
 public:
  /// `timeout_ms == 0` disables tracking entirely (the socketpair
  /// default — EOF detection is already reliable there, and the
  /// heartbeat-stall failpoint tests depend on silence not being fatal).
  explicit LivenessTracker(std::uint32_t timeout_ms,
                           const common::Clock* clock = nullptr)
      : timeout_ms_(timeout_ms),
        clock_(clock != nullptr ? clock : &common::system_clock()) {}

  bool enabled() const { return timeout_ms_ != 0; }

  /// Records that `worker_id` showed signs of life (any received frame).
  void note_activity(std::uint32_t worker_id) {
    if (!enabled()) return;
    last_seen_ns_[worker_id] = clock_->now_ns();
  }

  /// True when `worker_id` has been silent past the timeout. Workers
  /// never seen are not expired (spawn order vs first heartbeat is
  /// racy); call note_activity() at registration to arm the deadline.
  bool expired(std::uint32_t worker_id) const {
    if (!enabled()) return false;
    const auto it = last_seen_ns_.find(worker_id);
    if (it == last_seen_ns_.end()) return false;
    const std::uint64_t silence = clock_->now_ns() - it->second;
    return silence > static_cast<std::uint64_t>(timeout_ms_) * 1000000ull;
  }

  /// Stops tracking a worker that died for a known reason.
  void forget(std::uint32_t worker_id) { last_seen_ns_.erase(worker_id); }

 private:
  std::uint32_t timeout_ms_;
  const common::Clock* clock_;
  std::unordered_map<std::uint32_t, std::uint64_t> last_seen_ns_;
};

}  // namespace textmr::cluster
