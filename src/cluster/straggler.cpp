#include "cluster/straggler.hpp"

#include <algorithm>

namespace textmr::cluster {

namespace {

StragglerDetector::Attempt to_attempt(
    const std::tuple<std::uint8_t, std::uint32_t, std::uint32_t>& key) {
  StragglerDetector::Attempt a;
  a.kind = static_cast<TaskKind>(std::get<0>(key));
  a.id = std::get<1>(key);
  a.attempt = std::get<2>(key);
  return a;
}

}  // namespace

StragglerDetector::StragglerDetector(StragglerPolicy policy,
                                     const common::Clock* clock)
    : policy_(policy),
      clock_(clock != nullptr ? clock : &common::system_clock()) {}

void StragglerDetector::on_dispatch(TaskKind kind, std::uint32_t id,
                                    std::uint32_t attempt) {
  Running state;
  state.started_ns = clock_->now_ns();
  state.last_beat_ns = state.started_ns;
  running_[Key{static_cast<std::uint8_t>(kind), id, attempt}] = state;
}

void StragglerDetector::on_beat(TaskKind kind, std::uint32_t id,
                                std::uint32_t attempt, double progress) {
  auto it = running_.find(Key{static_cast<std::uint8_t>(kind), id, attempt});
  if (it == running_.end()) return;
  it->second.last_beat_ns = clock_->now_ns();
  it->second.progress = progress;
}

std::uint64_t StragglerDetector::on_finish(TaskKind kind, std::uint32_t id,
                                           std::uint32_t attempt) {
  auto it = running_.find(Key{static_cast<std::uint8_t>(kind), id, attempt});
  if (it == running_.end()) return 0;
  const std::uint64_t duration = clock_->now_ns() - it->second.started_ns;
  running_.erase(it);
  return duration;
}

void StragglerDetector::note_completed(TaskKind kind,
                                       std::uint64_t duration_ns) {
  auto& completed =
      kind == TaskKind::kMap ? completed_map_ns_ : completed_reduce_ns_;
  completed.push_back(duration_ns);
}

std::uint64_t StragglerDetector::median_duration_ns(TaskKind kind) const {
  const auto& completed =
      kind == TaskKind::kMap ? completed_map_ns_ : completed_reduce_ns_;
  if (completed.empty()) return 0;
  std::vector<std::uint64_t> sorted = completed;
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];
}

std::vector<StragglerDetector::Attempt> StragglerDetector::take_stragglers() {
  const std::uint64_t now = clock_->now_ns();
  const std::uint64_t stale_ns = policy_.heartbeat_timeout_ms * 1000000ull;
  std::vector<Attempt> flagged;
  for (auto& [key, state] : running_) {
    if (state.flagged) continue;
    const TaskKind kind = static_cast<TaskKind>(std::get<0>(key));
    bool straggling = now - state.last_beat_ns > stale_ns;
    if (!straggling) {
      const auto& completed =
          kind == TaskKind::kMap ? completed_map_ns_ : completed_reduce_ns_;
      if (completed.size() >= policy_.min_completed_for_median) {
        const std::uint64_t median = median_duration_ns(kind);
        straggling =
            median > 0 &&
            static_cast<double>(now - state.started_ns) >
                policy_.slowness_factor * static_cast<double>(median);
      }
    }
    if (straggling) {
      state.flagged = true;
      flagged.push_back(to_attempt(key));
    }
  }
  return flagged;
}

}  // namespace textmr::cluster
