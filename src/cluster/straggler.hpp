#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "cluster/protocol.hpp"
#include "common/clock.hpp"

namespace textmr::cluster {

/// Straggler policy knobs. A running attempt is flagged when either
///   - its worker's last heartbeat is older than `heartbeat_timeout_ms`
///     (the worker is alive on the channel but not making its beats —
///     e.g. stalled in I/O), or
///   - at least `min_completed_for_median` sibling tasks of the same kind
///     have finished, and the attempt's runtime exceeds
///     `slowness_factor` x the median completed duration.
struct StragglerPolicy {
  std::uint64_t heartbeat_timeout_ms = 1000;
  double slowness_factor = 4.0;
  std::uint32_t min_completed_for_median = 2;
};

/// Tracks running task attempts for the coordinator and decides which
/// deserve a speculative duplicate (paper §II-A's backup-task mechanism,
/// DESIGN.md §10). Pure bookkeeping over an injected Clock — no threads,
/// no syscalls — so the threshold arithmetic is testable with a
/// common::ManualClock.
class StragglerDetector {
 public:
  struct Attempt {
    TaskKind kind = TaskKind::kNone;
    std::uint32_t id = 0;
    std::uint32_t attempt = 0;
  };

  explicit StragglerDetector(StragglerPolicy policy,
                             const common::Clock* clock = nullptr);

  /// A new attempt started now.
  void on_dispatch(TaskKind kind, std::uint32_t id, std::uint32_t attempt);

  /// Heartbeat covering the attempt (refreshes its staleness clock).
  void on_beat(TaskKind kind, std::uint32_t id, std::uint32_t attempt,
               double progress);

  /// The attempt finished (any outcome); returns its runtime. A
  /// successful finish should also be fed to note_completed() so the
  /// median reflects it.
  std::uint64_t on_finish(TaskKind kind, std::uint32_t id,
                          std::uint32_t attempt);

  /// Records the duration of a successfully completed task, feeding the
  /// slowness baseline.
  void note_completed(TaskKind kind, std::uint64_t duration_ns);

  /// Attempts that currently qualify as stragglers. Each attempt is
  /// reported at most once (the flag is latched), so the coordinator
  /// launches at most one speculative duplicate per flagged attempt.
  std::vector<Attempt> take_stragglers();

  /// Median completed duration for `kind`; 0 until any completion.
  std::uint64_t median_duration_ns(TaskKind kind) const;

  std::size_t running() const { return running_.size(); }

 private:
  struct Running {
    std::uint64_t started_ns = 0;
    std::uint64_t last_beat_ns = 0;
    double progress = 0.0;
    bool flagged = false;
  };
  using Key = std::tuple<std::uint8_t, std::uint32_t, std::uint32_t>;

  StragglerPolicy policy_;
  const common::Clock* clock_;
  std::map<Key, Running> running_;
  std::vector<std::uint64_t> completed_map_ns_;
  std::vector<std::uint64_t> completed_reduce_ns_;
};

}  // namespace textmr::cluster
