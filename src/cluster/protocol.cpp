#include "cluster/protocol.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/stopwatch.hpp"

namespace textmr::cluster {

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kRunMap: return "run_map";
    case MsgType::kRunReduce: return "run_reduce";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kClockProbe: return "clock_probe";
    case MsgType::kSkewPlan: return "skew_plan";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kMapDone: return "map_done";
    case MsgType::kReduceDone: return "reduce_done";
    case MsgType::kTaskFailed: return "task_failed";
    case MsgType::kClockSync: return "clock_sync";
    case MsgType::kTraceChunk: return "trace_chunk";
    case MsgType::kWelcome: return "welcome";
    case MsgType::kHello: return "hello";
    case MsgType::kShuffleFetch: return "shuffle_fetch";
    case MsgType::kShuffleData: return "shuffle_data";
    case MsgType::kShuffleError: return "shuffle_error";
  }
  return "unknown";
}

// ---- WireWriter / WireReader ---------------------------------------------

void WireWriter::u32(std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 4);
}

void WireWriter::u64(std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 8);
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.append(v);
}

std::uint8_t WireReader::u8() {
  if (in_.empty()) throw FormatError("cluster frame truncated");
  const std::uint8_t v = static_cast<std::uint8_t>(in_[0]);
  in_.remove_prefix(1);
  return v;
}

std::uint32_t WireReader::u32() {
  if (in_.size() < 4) throw FormatError("cluster frame truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(in_[i]))
         << (8 * i);
  }
  in_.remove_prefix(4);
  return v;
}

std::uint64_t WireReader::u64() {
  if (in_.size() < 8) throw FormatError("cluster frame truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in_[i]))
         << (8 * i);
  }
  in_.remove_prefix(8);
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str() {
  const std::uint32_t len = u32();
  if (in_.size() < len) throw FormatError("cluster frame truncated");
  std::string v(in_.substr(0, len));
  in_.remove_prefix(len);
  return v;
}

std::string WireReader::rest() {
  std::string v(in_);
  in_.remove_prefix(in_.size());
  return v;
}

void WireReader::expect_done() const {
  if (!in_.empty()) throw FormatError("cluster frame has trailing bytes");
}

// ---- field-group helpers --------------------------------------------------

namespace {

void put_metrics(WireWriter& w, const mr::TaskMetrics& m) {
  w.u32(static_cast<std::uint32_t>(mr::kNumOps));
  for (std::uint64_t ns : m.ns) w.u64(ns);
  w.u64(m.input_records);
  w.u64(m.input_bytes);
  w.u64(m.map_output_records);
  w.u64(m.map_output_bytes);
  w.u64(m.freq_hits);
  w.u64(m.freq_flushes);
  w.u64(m.spill_input_records);
  w.u64(m.spill_input_bytes);
  w.u64(m.spilled_records);
  w.u64(m.spilled_bytes);
  w.u64(m.spill_count);
  w.u64(m.merged_records);
  w.u64(m.merged_bytes);
  w.u64(m.shuffled_bytes);
  w.u64(m.shuffled_wire_bytes);
  w.u64(m.reduce_input_records);
  w.u64(m.reduce_groups);
  w.u64(m.output_records);
  w.u64(m.output_bytes);
}

mr::TaskMetrics get_metrics(WireReader& r) {
  mr::TaskMetrics m;
  const std::uint32_t ops = r.u32();
  if (ops != mr::kNumOps) {
    throw FormatError("cluster metrics op-count mismatch");
  }
  for (std::size_t i = 0; i < mr::kNumOps; ++i) m.ns[i] = r.u64();
  m.input_records = r.u64();
  m.input_bytes = r.u64();
  m.map_output_records = r.u64();
  m.map_output_bytes = r.u64();
  m.freq_hits = r.u64();
  m.freq_flushes = r.u64();
  m.spill_input_records = r.u64();
  m.spill_input_bytes = r.u64();
  m.spilled_records = r.u64();
  m.spilled_bytes = r.u64();
  m.spill_count = r.u64();
  m.merged_records = r.u64();
  m.merged_bytes = r.u64();
  m.shuffled_bytes = r.u64();
  m.shuffled_wire_bytes = r.u64();
  m.reduce_input_records = r.u64();
  m.reduce_groups = r.u64();
  m.output_records = r.u64();
  m.output_bytes = r.u64();
  return m;
}

void put_counters(WireWriter& w, const mr::Counters& counters) {
  w.u32(static_cast<std::uint32_t>(counters.all().size()));
  for (const auto& [name, value] : counters.all()) {
    w.str(name);
    w.u64(value);
  }
}

mr::Counters get_counters(WireReader& r) {
  mr::Counters counters;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string name = r.str();
    counters.increment(name, r.u64());
  }
  return counters;
}

void put_run_info(WireWriter& w, const io::SpillRunInfo& run) {
  w.str(run.path);
  w.u64(run.bytes);
  w.u64(run.records);
  w.u32(static_cast<std::uint32_t>(run.partitions.size()));
  for (const auto& extent : run.partitions) {
    w.u64(extent.offset);
    w.u64(extent.bytes);
    w.u64(extent.records);
  }
}

io::SpillRunInfo get_run_info(WireReader& r) {
  io::SpillRunInfo run;
  run.path = r.str();
  run.bytes = r.u64();
  run.records = r.u64();
  const std::uint32_t n = r.u32();
  run.partitions.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    io::PartitionExtent extent;
    extent.offset = r.u64();
    extent.bytes = r.u64();
    extent.records = r.u64();
    run.partitions.push_back(extent);
  }
  return run;
}

void put_endpoint(WireWriter& w, const Endpoint& ep) {
  w.str(ep.host);
  w.u32(ep.port);
}

Endpoint get_endpoint(WireReader& r) {
  Endpoint ep;
  ep.host = r.str();
  const std::uint32_t port = r.u32();
  if (port > 0xffff) {
    throw FormatError("cluster endpoint port " + std::to_string(port) +
                      " out of range");
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

void put_worker_metrics(WireWriter& w, const WorkerMetrics& m) {
  w.u64(m.records);
  w.u64(m.bytes);
  w.u64(m.spills);
  w.u64(m.tasks_completed);
  w.u64(m.task_failures);
  w.u64(m.trace_dropped);
  w.str(m.task_latency_ns.serialize());
}

WorkerMetrics get_worker_metrics(WireReader& r) {
  WorkerMetrics m;
  m.records = r.u64();
  m.bytes = r.u64();
  m.spills = r.u64();
  m.tasks_completed = r.u64();
  m.task_failures = r.u64();
  m.trace_dropped = r.u64();
  m.task_latency_ns = obs::LatencyHistogram::deserialize(r.str());
  return m;
}

void put_event(WireWriter& w, const obs::TraceEvent& e) {
  w.str(e.name != nullptr ? e.name : "");
  w.str(e.category != nullptr ? e.category : "");
  w.u64(e.ts_ns);
  w.u64(e.dur_ns);
  w.u32(e.pid);
  w.u32(e.tid);
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.u8(e.num_args);
  for (std::uint8_t i = 0; i < e.num_args; ++i) {
    w.str(e.arg_names[i] != nullptr ? e.arg_names[i] : "");
    w.f64(e.args[i]);
  }
}

}  // namespace

// ---- messages -------------------------------------------------------------

std::string encode_run_task(MsgType type, const RunTaskMsg& msg) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(msg.id);
  w.u32(msg.attempt);
  return w.take();
}

RunTaskMsg decode_run_task(WireReader& r) {
  RunTaskMsg msg;
  msg.id = r.u32();
  msg.attempt = r.u32();
  r.expect_done();
  return msg;
}

std::string encode_run_reduce(const RunReduceMsg& msg) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kRunReduce));
  w.u32(msg.partition);
  w.u32(msg.attempt);
  w.u32(static_cast<std::uint32_t>(msg.map_outputs.size()));
  for (const auto& run : msg.map_outputs) put_run_info(w, run);
  w.u32(static_cast<std::uint32_t>(msg.sources.size()));
  for (const auto& source : msg.sources) put_endpoint(w, source);
  return w.take();
}

RunReduceMsg decode_run_reduce(WireReader& r) {
  RunReduceMsg msg;
  msg.partition = r.u32();
  msg.attempt = r.u32();
  const std::uint32_t n = r.u32();
  msg.map_outputs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    msg.map_outputs.push_back(get_run_info(r));
  }
  const std::uint32_t num_sources = r.u32();
  if (num_sources != 0 && num_sources != n) {
    throw FormatError("run_reduce sources count " +
                      std::to_string(num_sources) + " != runs count " +
                      std::to_string(n));
  }
  msg.sources.reserve(num_sources);
  for (std::uint32_t i = 0; i < num_sources; ++i) {
    msg.sources.push_back(get_endpoint(r));
  }
  r.expect_done();
  return msg;
}

std::string encode_heartbeat(const HeartbeatMsg& msg) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kHeartbeat));
  w.u32(msg.worker_id);
  w.u8(static_cast<std::uint8_t>(msg.kind));
  w.u32(msg.id);
  w.u32(msg.attempt);
  w.f64(msg.progress);
  put_worker_metrics(w, msg.stats);
  return w.take();
}

HeartbeatMsg decode_heartbeat(WireReader& r) {
  HeartbeatMsg msg;
  msg.worker_id = r.u32();
  msg.kind = static_cast<TaskKind>(r.u8());
  msg.id = r.u32();
  msg.attempt = r.u32();
  msg.progress = r.f64();
  msg.stats = get_worker_metrics(r);
  r.expect_done();
  return msg;
}

std::string encode_task_failed(const TaskFailedMsg& msg) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kTaskFailed));
  w.u8(static_cast<std::uint8_t>(msg.kind));
  w.u32(msg.id);
  w.u32(msg.attempt);
  w.u8(msg.retryable ? 1 : 0);
  w.str(msg.message);
  return w.take();
}

TaskFailedMsg decode_task_failed(WireReader& r) {
  TaskFailedMsg msg;
  msg.kind = static_cast<TaskKind>(r.u8());
  msg.id = r.u32();
  msg.attempt = r.u32();
  msg.retryable = r.u8() != 0;
  msg.message = r.str();
  r.expect_done();
  return msg;
}

std::string encode_map_done(std::uint32_t task, std::uint32_t attempt,
                            const mr::MapTaskResult& result) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kMapDone));
  w.u32(task);
  w.u32(attempt);
  put_run_info(w, result.output);
  put_metrics(w, result.map_thread);
  put_metrics(w, result.support_thread);
  put_counters(w, result.counters);
  w.u64(result.wall_ns);
  w.u64(result.pipeline_wall_ns);
  w.u64(result.spills);
  w.f64(result.final_spill_threshold);
  w.u8(static_cast<std::uint8_t>(result.freq_stage_at_end));
  w.f64(result.freq_sampling_fraction);
  return w.take();
}

void decode_map_done(WireReader& r, std::uint32_t& task,
                     std::uint32_t& attempt, mr::MapTaskResult& result) {
  task = r.u32();
  attempt = r.u32();
  result.output = get_run_info(r);
  result.map_thread = get_metrics(r);
  result.support_thread = get_metrics(r);
  result.counters = get_counters(r);
  result.wall_ns = r.u64();
  result.pipeline_wall_ns = r.u64();
  result.spills = r.u64();
  result.final_spill_threshold = r.f64();
  result.freq_stage_at_end =
      static_cast<freqbuf::FreqBufferController::Stage>(r.u8());
  result.freq_sampling_fraction = r.f64();
  r.expect_done();
}

std::string encode_reduce_done(std::uint32_t partition, std::uint32_t attempt,
                               const mr::ReduceTaskResult& result) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kReduceDone));
  w.u32(partition);
  w.u32(attempt);
  w.str(result.output_path.string());
  put_metrics(w, result.metrics);
  put_counters(w, result.counters);
  w.u64(result.wall_ns);
  return w.take();
}

void decode_reduce_done(WireReader& r, std::uint32_t& partition,
                        std::uint32_t& attempt, mr::ReduceTaskResult& result) {
  partition = r.u32();
  attempt = r.u32();
  result.output_path = r.str();
  result.metrics = get_metrics(r);
  result.counters = get_counters(r);
  result.wall_ns = r.u64();
  r.expect_done();
}

std::string encode_skew_plan(const mr::SkewPlan& plan) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kSkewPlan));
  w.u32(plan.num_canonical);
  w.u32(static_cast<std::uint32_t>(plan.entries.size()));
  for (const auto& entry : plan.entries) {
    w.str(entry.key);
    w.u8(static_cast<std::uint8_t>(entry.mode));
    w.u32(entry.first_physical);
    w.u32(entry.num_shares);
  }
  return w.take();
}

mr::SkewPlan decode_skew_plan(WireReader& r) {
  mr::SkewPlan plan;
  plan.num_canonical = r.u32();
  const std::uint32_t n = r.u32();
  plan.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    mr::SkewPlan::Entry entry;
    entry.key = r.str();
    const std::uint8_t mode = r.u8();
    if (mode > static_cast<std::uint8_t>(mr::SkewPlan::Mode::kSplit)) {
      throw FormatError("cluster skew plan has bad entry mode " +
                        std::to_string(mode));
    }
    entry.mode = static_cast<mr::SkewPlan::Mode>(mode);
    entry.first_physical = r.u32();
    entry.num_shares = r.u32();
    plan.entries.push_back(std::move(entry));
  }
  r.expect_done();
  return plan;
}

std::string encode_clock_probe(const ClockProbeMsg& msg) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kClockProbe));
  w.u64(msg.t_send);
  return w.take();
}

ClockProbeMsg decode_clock_probe(WireReader& r) {
  ClockProbeMsg msg;
  msg.t_send = r.u64();
  r.expect_done();
  return msg;
}

std::string encode_clock_sync(const ClockSyncMsg& msg) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kClockSync));
  w.u32(msg.worker_id);
  w.u64(msg.t_probe);
  w.u64(msg.t_worker);
  return w.take();
}

ClockSyncMsg decode_clock_sync(WireReader& r) {
  ClockSyncMsg msg;
  msg.worker_id = r.u32();
  msg.t_probe = r.u64();
  msg.t_worker = r.u64();
  r.expect_done();
  return msg;
}

std::string encode_welcome(const WelcomeMsg& msg) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kWelcome));
  w.u32(msg.worker_id);
  w.u32(msg.heartbeat_interval_ms);
  return w.take();
}

WelcomeMsg decode_welcome(WireReader& r) {
  WelcomeMsg msg;
  msg.worker_id = r.u32();
  msg.heartbeat_interval_ms = r.u32();
  r.expect_done();
  return msg;
}

std::string encode_hello(const HelloMsg& msg) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kHello));
  w.u32(msg.worker_id);
  put_endpoint(w, msg.shuffle);
  return w.take();
}

HelloMsg decode_hello(WireReader& r) {
  HelloMsg msg;
  msg.worker_id = r.u32();
  msg.shuffle = get_endpoint(r);
  r.expect_done();
  return msg;
}

std::string encode_shuffle_fetch(const ShuffleFetchMsg& msg) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kShuffleFetch));
  w.str(msg.run_path);
  w.u32(msg.partition);
  return w.take();
}

ShuffleFetchMsg decode_shuffle_fetch(WireReader& r) {
  ShuffleFetchMsg msg;
  msg.run_path = r.str();
  msg.partition = r.u32();
  r.expect_done();
  return msg;
}

std::string encode_shuffle_data(const ShuffleDataMsg& msg) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kShuffleData));
  w.u64(msg.records);
  // The partition bytes ride as the frame's tail, unframed: they are
  // already length-delimited by the frame itself, and skipping the
  // u32-length str() form keeps a single partition fetchable right up
  // to the kMaxFramePayload cap.
  std::string payload = w.take();
  payload += msg.bytes;
  return payload;
}

ShuffleDataMsg decode_shuffle_data(WireReader& r) {
  ShuffleDataMsg msg;
  msg.records = r.u64();
  msg.bytes = r.rest();
  return msg;
}

std::string encode_shuffle_error(const ShuffleErrorMsg& msg) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kShuffleError));
  w.u8(msg.retryable ? 1 : 0);
  w.str(msg.message);
  return w.take();
}

ShuffleErrorMsg decode_shuffle_error(WireReader& r) {
  ShuffleErrorMsg msg;
  msg.retryable = r.u8() != 0;
  msg.message = r.str();
  r.expect_done();
  return msg;
}

namespace {

constexpr std::uint8_t kChunkFlagFinal = 1;

/// Everything in a chunk except its events; metadata rides only on the
/// first frame of a batch so frames 2..n stay almost pure event payload.
std::string encode_chunk_header(const TraceChunkMsg& msg, bool first,
                                bool last) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kTraceChunk));
  w.u32(msg.worker_id);
  w.u8((last && msg.final_chunk) ? kChunkFlagFinal : 0);
  put_worker_metrics(w, msg.stats);
  const obs::TraceData& trace = msg.trace;
  w.u8(trace.enabled ? 1 : 0);
  w.str(first ? trace.job_name : std::string());
  w.u64(trace.epoch_ns);
  w.u64(first ? trace.dropped_events : 0);
  const std::size_t num_rings = first ? trace.ring_drops.size() : 0;
  w.u32(static_cast<std::uint32_t>(num_rings));
  for (std::size_t i = 0; i < num_rings; ++i) {
    w.u32(trace.ring_drops[i].pid);
    w.u32(trace.ring_drops[i].tid);
    w.u64(trace.ring_drops[i].dropped);
  }
  const std::size_t num_procs = first ? trace.process_names.size() : 0;
  w.u32(static_cast<std::uint32_t>(num_procs));
  for (std::size_t i = 0; i < num_procs; ++i) {
    w.u32(trace.process_names[i].first);
    w.str(trace.process_names[i].second);
  }
  const std::size_t num_threads = first ? trace.thread_names.size() : 0;
  w.u32(static_cast<std::uint32_t>(num_threads));
  for (std::size_t i = 0; i < num_threads; ++i) {
    w.u32(trace.thread_names[i].pid);
    w.u32(trace.thread_names[i].tid);
    w.str(trace.thread_names[i].name);
  }
  return w.take();
}

}  // namespace

std::vector<std::string> encode_trace_chunks(const TraceChunkMsg& msg,
                                             std::size_t max_payload) {
  // Greedy packing: serialize events one by one, starting a new frame
  // whenever the next event would push the payload past the budget. A
  // single oversized event still ships (in its own frame) rather than
  // being dropped; kMaxFramePayload is 64x the default budget, so only
  // a pathological event could trip the frame cap.
  std::vector<std::pair<std::size_t, std::size_t>> frames;  // [begin, end)
  std::vector<std::string> encoded_events;
  encoded_events.reserve(msg.trace.events.size());
  std::size_t frame_begin = 0;
  std::size_t frame_bytes = 0;
  for (std::size_t i = 0; i < msg.trace.events.size(); ++i) {
    WireWriter event_writer;
    put_event(event_writer, msg.trace.events[i]);
    std::string bytes = event_writer.take();
    if (i > frame_begin && frame_bytes + bytes.size() > max_payload) {
      frames.emplace_back(frame_begin, i);
      frame_begin = i;
      frame_bytes = 0;
    }
    frame_bytes += bytes.size();
    encoded_events.push_back(std::move(bytes));
  }
  frames.emplace_back(frame_begin, msg.trace.events.size());

  std::vector<std::string> payloads;
  payloads.reserve(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const bool first = f == 0;
    const bool last = f + 1 == frames.size();
    std::string payload = encode_chunk_header(msg, first, last);
    WireWriter count;
    count.u32(static_cast<std::uint32_t>(frames[f].second - frames[f].first));
    payload += count.take();
    for (std::size_t i = frames[f].first; i < frames[f].second; ++i) {
      payload += encoded_events[i];
    }
    payloads.push_back(std::move(payload));
  }
  return payloads;
}

TraceChunkMsg decode_trace_chunk(WireReader& r) {
  TraceChunkMsg msg;
  msg.worker_id = r.u32();
  msg.final_chunk = (r.u8() & kChunkFlagFinal) != 0;
  msg.stats = get_worker_metrics(r);
  obs::TraceData& trace = msg.trace;
  trace.enabled = r.u8() != 0;
  trace.job_name = r.str();
  trace.epoch_ns = r.u64();
  trace.dropped_events = r.u64();
  const std::uint32_t num_rings = r.u32();
  for (std::uint32_t i = 0; i < num_rings; ++i) {
    obs::TraceData::RingDrops drops;
    drops.pid = r.u32();
    drops.tid = r.u32();
    drops.dropped = r.u64();
    trace.ring_drops.push_back(drops);
  }
  const std::uint32_t num_procs = r.u32();
  for (std::uint32_t i = 0; i < num_procs; ++i) {
    const std::uint32_t pid = r.u32();
    trace.process_names.emplace_back(pid, r.str());
  }
  const std::uint32_t num_threads = r.u32();
  for (std::uint32_t i = 0; i < num_threads; ++i) {
    obs::TraceData::ThreadName thread;
    thread.pid = r.u32();
    thread.tid = r.u32();
    thread.name = r.str();
    trace.thread_names.push_back(std::move(thread));
  }
  // Dedupe interning: a worker's events repeat a handful of literal
  // names, so the pool stays tiny even for large rings.
  std::unordered_map<std::string, const char*> seen;
  auto intern = [&trace, &seen](std::string s) -> const char* {
    auto it = seen.find(s);
    if (it != seen.end()) return it->second;
    const char* p = trace.intern(s);
    seen.emplace(std::move(s), p);
    return p;
  };
  const std::uint32_t num_events = r.u32();
  trace.events.reserve(num_events);
  for (std::uint32_t i = 0; i < num_events; ++i) {
    obs::TraceEvent e;
    e.name = intern(r.str());
    e.category = intern(r.str());
    e.ts_ns = r.u64();
    e.dur_ns = r.u64();
    e.pid = r.u32();
    e.tid = r.u32();
    e.kind = static_cast<obs::EventKind>(r.u8());
    e.num_args = r.u8();
    if (e.num_args > 3) throw FormatError("cluster trace event arg overflow");
    for (std::uint8_t a = 0; a < e.num_args; ++a) {
      e.arg_names[a] = intern(r.str());
      e.args[a] = r.f64();
    }
    trace.events.push_back(e);
  }
  r.expect_done();
  return msg;
}

// ---- framed socket I/O ----------------------------------------------------

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

constexpr std::size_t kFrameHeaderBytes = 4;  // u32 length prefix

std::size_t frame_preamble_bytes(FrameFormat format) {
  return format == FrameFormat::kChecksummed ? kFrameHeaderBytes + 4
                                             : kFrameHeaderBytes;
}

void put_u32_le(char* dest, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dest[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

std::uint32_t get_u32_le(const char* src) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(src[i]))
         << (8 * i);
  }
  return v;
}

void check_frame_length(std::uint32_t len) {
  if (len > kMaxFramePayload) {
    throw IoError("cluster frame length " + std::to_string(len) +
                  " exceeds cap " + std::to_string(kMaxFramePayload) +
                  " (desynchronized or corrupted stream)");
  }
}

void check_frame_crc(std::uint32_t expected, std::string_view payload) {
  const std::uint32_t actual = crc32(payload);
  if (actual != expected) {
    throw IoError("cluster frame checksum mismatch (got " +
                  std::to_string(actual) + ", frame claims " +
                  std::to_string(expected) + ")");
  }
}

/// Milliseconds remaining until `deadline_ns`; -1 when there is no
/// deadline. Throws IoError once the deadline has passed.
int remaining_ms(std::uint64_t deadline_ns, const char* what) {
  if (deadline_ns == 0) return -1;
  const std::uint64_t now = monotonic_ns();
  if (now >= deadline_ns) {
    throw IoError(std::string("cluster ") + what +
                  " timed out (dead or stalled peer)");
  }
  const std::uint64_t ms = (deadline_ns - now) / 1000000ull;
  return static_cast<int>(std::min<std::uint64_t>(ms + 1, 60000));
}

std::uint64_t deadline_from(std::int32_t timeout_ms) {
  return timeout_ms < 0
             ? 0
             : monotonic_ns() +
                   static_cast<std::uint64_t>(timeout_ms) * 1000000ull;
}

/// Waits until `fd` is ready for `events`; throws IoError on poll
/// failure or when `deadline_ns` (0 = none) passes first.
void wait_ready(int fd, short events, std::uint64_t deadline_ns,
                const char* what) {
  while (true) {
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, remaining_ms(deadline_ns, what));
    if (rc > 0) return;
    if (rc < 0 && errno != EINTR) {
      throw IoError("cluster poll failed: " + std::string(strerror(errno)));
    }
    // rc == 0: poll timed out; loop so remaining_ms re-checks the
    // deadline and throws once it has truly passed.
  }
}

/// Writes all of `data`; false if the peer is gone. MSG_DONTWAIT even
/// on blocking fds: a full socket buffer must route through wait_ready
/// (which honors the deadline), not block inside the kernel's send —
/// a peer that stops draining would otherwise hang us forever.
bool send_all(int fd, const char* data, std::size_t n,
              std::uint64_t deadline_ns) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w =
        ::send(fd, data + off, n - off, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_ready(fd, POLLOUT, deadline_ns, "send");
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EPIPE || errno == ECONNRESET)) return false;
    throw IoError("cluster send failed: " + std::string(strerror(errno)));
  }
  return true;
}

/// Reads exactly `n` bytes into `dest`. Returns false on EOF before the
/// first byte when `eof_ok`; throws on mid-read EOF, errors, timeout.
bool recv_exact(int fd, char* dest, std::size_t n, std::uint64_t deadline_ns,
                bool eof_ok) {
  std::size_t got = 0;
  while (got < n) {
    // Poll first: worker-side fds are blocking, and a recv() on a
    // blocking socket would ignore the deadline entirely.
    wait_ready(fd, POLLIN, deadline_ns, "recv");
    const ssize_t r = ::recv(fd, dest + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0 && eof_ok) return false;  // clean EOF between frames
      throw IoError("cluster channel closed mid-frame");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw IoError("cluster recv failed: " + std::string(strerror(errno)));
  }
  return true;
}

/// kCorrupt flips one payload byte (the checksummed format detects it on
/// the receiving side); kShortWrite tears the frame after the preamble
/// plus half the payload and reports the peer gone. Both model a
/// desynchronizing network fault, so callers must treat the channel as
/// dead afterwards — exactly what returning false makes them do.
bool apply_send_fault(const failpoint::Action& action, int fd,
                      std::string& wire, std::size_t preamble,
                      std::uint64_t deadline_ns) {
  switch (action.kind) {
    case failpoint::ActionKind::kThrow:
      throw failpoint::InjectedFault("net.send");
    case failpoint::ActionKind::kDelay:
      failpoint::maybe_delay(action);
      return true;
    case failpoint::ActionKind::kCorrupt:
      if (wire.size() > preamble) {
        wire[preamble + (wire.size() - preamble) / 2] ^= 0x20;
      }
      return true;
    case failpoint::ActionKind::kShortWrite: {
      const std::size_t torn = preamble + (wire.size() - preamble) / 2;
      send_all(fd, wire.data(), torn, deadline_ns);
      return false;
    }
  }
  return true;
}

}  // namespace

bool send_frame(int fd, std::string_view payload, FrameFormat format,
                std::int32_t timeout_ms) {
  const std::uint64_t deadline_ns = deadline_from(timeout_ms);
  const std::size_t preamble = frame_preamble_bytes(format);
  std::string wire;
  wire.resize(preamble);
  put_u32_le(wire.data(), static_cast<std::uint32_t>(payload.size()));
  if (format == FrameFormat::kChecksummed) {
    put_u32_le(wire.data() + kFrameHeaderBytes, crc32(payload));
  }
  wire.append(payload);
  if (failpoint::enabled()) {
    if (const auto action = failpoint::consume("net.send")) {
      if (!apply_send_fault(*action, fd, wire, preamble, deadline_ns)) {
        return false;
      }
    }
  }
  return send_all(fd, wire.data(), wire.size(), deadline_ns);
}

std::optional<std::string> recv_frame(int fd, FrameFormat format,
                                      std::int32_t timeout_ms) {
  if (failpoint::enabled()) {
    if (const auto action = failpoint::consume("net.recv")) {
      if (action->kind == failpoint::ActionKind::kDelay) {
        failpoint::maybe_delay(*action);
      } else {
        throw failpoint::InjectedFault("net.recv");
      }
    }
  }
  const std::uint64_t deadline_ns = deadline_from(timeout_ms);
  const std::size_t preamble = frame_preamble_bytes(format);
  char header[kFrameHeaderBytes + 4];
  if (!recv_exact(fd, header, preamble, deadline_ns, /*eof_ok=*/true)) {
    return std::nullopt;
  }
  const std::uint32_t len = get_u32_le(header);
  check_frame_length(len);
  std::string payload(len, '\0');
  recv_exact(fd, payload.data(), len, deadline_ns, /*eof_ok=*/false);
  if (format == FrameFormat::kChecksummed) {
    check_frame_crc(get_u32_le(header + kFrameHeaderBytes), payload);
  }
  return payload;
}

std::optional<std::string> FrameDecoder::next() {
  const std::size_t preamble = frame_preamble_bytes(format_);
  if (buf_.size() < preamble) return std::nullopt;
  const std::uint32_t len = get_u32_le(buf_.data());
  check_frame_length(len);
  if (buf_.size() < preamble + len) return std::nullopt;
  std::string frame = buf_.substr(preamble, len);
  if (format_ == FrameFormat::kChecksummed) {
    check_frame_crc(get_u32_le(buf_.data() + kFrameHeaderBytes), frame);
  }
  buf_.erase(0, preamble + len);
  return frame;
}

}  // namespace textmr::cluster
