#include "cluster/shuffle_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/logging.hpp"

namespace textmr::cluster {

ShuffleServer::ShuffleServer(Options options) : options_(std::move(options)) {
  listen_fd_ = tcp_listen(options_.listen);
  endpoint_ = local_endpoint(listen_fd_);
  thread_ = std::thread([this] { accept_loop(); });
}

ShuffleServer::~ShuffleServer() { stop(); }

void ShuffleServer::stop() {
  if (!stop_.exchange(true, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  } else if (thread_.joinable()) {
    thread_.join();
  }
}

void ShuffleServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // Short poll so stop() is honored within ~250ms even when idle.
    const int rc = ::poll(&pfd, 1, 250);
    if (rc < 0) {
      if (errno == EINTR) continue;
      TEXTMR_LOG(kWarn) << "shuffle server poll failed: " << strerror(errno);
      return;
    }
    if (rc == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      TEXTMR_LOG(kWarn) << "shuffle server accept failed: " << strerror(errno);
      return;
    }
    serve(fd);
    ::close(fd);
  }
}

void ShuffleServer::serve(int fd) {
  if (failpoint::enabled()) {
    if (const auto action = failpoint::consume("shuffle.serve")) {
      if (action->kind == failpoint::ActionKind::kDelay) {
        failpoint::maybe_delay(*action);
      } else {
        // Any other action models a crashed/broken server: drop the
        // connection without a reply. The client sees EOF and retries.
        return;
      }
    }
  }
  try {
    const auto frame =
        recv_frame(fd, FrameFormat::kChecksummed, options_.io_timeout_ms);
    if (!frame.has_value()) return;  // client went away before asking
    WireReader r(*frame);
    const MsgType type = static_cast<MsgType>(r.u8());
    ShuffleErrorMsg error;
    if (type != MsgType::kShuffleFetch) {
      error.retryable = false;
      error.message = "unexpected message type " +
                      std::string(msg_type_name(type));
      send_frame(fd, encode_shuffle_error(error), FrameFormat::kChecksummed,
                 options_.io_timeout_ms);
      return;
    }
    const ShuffleFetchMsg fetch = decode_shuffle_fetch(r);
    if (!path_allowed(fetch.run_path)) {
      error.retryable = false;
      error.message = "run path outside served root: " + fetch.run_path;
      send_frame(fd, encode_shuffle_error(error), FrameFormat::kChecksummed,
                 options_.io_timeout_ms);
      return;
    }
    io::SpillRunReader reader(fetch.run_path, options_.spill_format);
    if (fetch.partition >= reader.num_partitions()) {
      error.retryable = false;
      error.message = "partition " + std::to_string(fetch.partition) +
                      " out of range (run has " +
                      std::to_string(reader.num_partitions()) + ")";
      send_frame(fd, encode_shuffle_error(error), FrameFormat::kChecksummed,
                 options_.io_timeout_ms);
      return;
    }
    ShuffleDataMsg data;
    data.records = reader.extent(fetch.partition).records;
    data.bytes = reader.read_partition(fetch.partition);
    const std::uint64_t served = data.bytes.size();
    if (send_frame(fd, encode_shuffle_data(data), FrameFormat::kChecksummed,
                   options_.io_timeout_ms)) {
      bytes_served_.fetch_add(served, std::memory_order_relaxed);
      requests_served_.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const std::exception& e) {
    // Disk errors, truncated requests, timeouts: report retryable (the
    // run may still be mid-rename on a racing attempt) and move on. The
    // reply is best-effort — the connection may already be dead.
    TEXTMR_LOG(kWarn) << "shuffle server request failed: " << e.what();
    try {
      ShuffleErrorMsg error;
      error.retryable = true;
      error.message = e.what();
      send_frame(fd, encode_shuffle_error(error), FrameFormat::kChecksummed,
                 options_.io_timeout_ms);
    } catch (const std::exception&) {
    }
  }
}

bool ShuffleServer::path_allowed(const std::string& path) const {
  if (options_.root.empty()) return false;
  if (path.find("/../") != std::string::npos) return false;
  if (path.compare(0, options_.root.size(), options_.root) != 0) return false;
  // Require a path separator right after the root so "/tmp/jobX-evil"
  // does not pass a root of "/tmp/jobX".
  return options_.root.back() == '/' ||
         (path.size() > options_.root.size() &&
          path[options_.root.size()] == '/');
}

}  // namespace textmr::cluster
