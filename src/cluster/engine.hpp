#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "cluster/straggler.hpp"
#include "cluster/transport.hpp"
#include "common/clock.hpp"
#include "mr/job.hpp"

namespace textmr::cluster {

/// Cluster-execution knobs, orthogonal to the JobSpec (which describes
/// the computation; this describes the machinery running it).
struct ClusterConfig {
  /// Worker processes. Each models one shared-nothing node with one
  /// task slot; map_parallelism/reduce_parallelism in the JobSpec are
  /// ignored by this engine (parallelism = workers).
  std::uint32_t num_workers = 2;

  /// How coordinator and workers talk (DESIGN.md §14): kSocketpair is
  /// the original fork+socketpair shape; kTcp runs checksummed frames
  /// over real sockets and enables external workers + network shuffle.
  TransportKind transport = TransportKind::kSocketpair;

  /// TCP listener for worker channels (kTcp only). Port 0 = kernel
  /// assigned; give a fixed port when external workers must find it.
  Endpoint listen;

  /// Of num_workers, how many join externally (`textmr_cli worker
  /// --connect`) instead of being forked. kTcp only.
  std::uint32_t external_workers = 0;

  /// How long spawn waits for each external worker to dial in.
  std::int32_t accept_timeout_ms = 30000;

  /// Per-frame send/recv budget on coordinator↔worker channels;
  /// -1 = no limit (the socketpair default — local peers either respond
  /// or EOF promptly).
  std::int32_t io_timeout_ms = -1;

  /// Coordinator-side liveness: a worker silent longer than this (no
  /// frames, heartbeats included) is declared dead. 0 disables — right
  /// for socketpair (EOF detection is reliable) and required by the
  /// heartbeat-stall failpoint tests; TCP multi-host setups should arm
  /// it (a powered-off peer never EOFs).
  std::uint32_t liveness_timeout_ms = 0;

  /// Worker-side mirror of the same: exit when the coordinator sends
  /// nothing for this long while the worker is idle. 0 = wait forever.
  std::uint32_t worker_idle_timeout_ms = 0;

  /// Pull map output from per-worker shuffle servers instead of reading
  /// spill runs through the shared filesystem. Defaults to on for kTcp,
  /// off for kSocketpair; set explicitly to override (tests exercise
  /// both shapes on both transports).
  std::optional<bool> network_shuffle;

  /// Clock injected into the liveness tracker (ManualClock in tests).
  const common::Clock* clock = nullptr;

  /// Launch speculative duplicate attempts for straggling tasks
  /// (paper §II-A backup tasks). First finished attempt wins; the
  /// duplicate's output commits through the same tmp+rename path, so a
  /// lost race never corrupts output.
  bool speculation = true;

  std::uint32_t heartbeat_interval_ms = 25;
  StragglerPolicy straggler;

  /// How long shutdown waits for a worker to drain and exit before
  /// SIGKILLing it (a straggling duplicate attempt may still be running).
  std::uint64_t shutdown_grace_ms = 10000;

  /// Test seam: runs inside each child process right after fork, before
  /// any task executes — e.g. re-arm failpoints asymmetrically so only
  /// worker 0 is slow. Inherited armed failpoints stay armed in every
  /// worker otherwise.
  std::function<void(std::uint32_t worker_id)> worker_init;

  /// Test seam: observes spawned worker pids in the coordinator
  /// (SIGKILL-based fault injection). External workers report pid -1.
  std::function<void(std::uint32_t worker_id, int pid)> on_worker_spawn;
};

/// Multi-process shared-nothing MapReduce engine (DESIGN.md §10, §14):
/// runs `num_workers` workers — forked clones of the current process
/// and/or externally-started processes that dial in over TCP —
/// dispatches map/reduce tasks over per-worker framed control channels,
/// shuffles either through spill-run files on the shared filesystem or
/// by pulling partitions from per-worker shuffle servers, and recovers
/// from worker death and stragglers (heartbeats + speculative
/// execution). Produces byte-identical output to LocalEngine for
/// deterministic applications — the cross-engine differential battery
/// enforces exactly that, across both transports.
class ClusterEngine {
 public:
  explicit ClusterEngine(ClusterConfig config = {});
  ~ClusterEngine();

  /// Validates `spec`, runs the job across worker processes, returns
  /// outputs + metrics (+ the merged multi-process trace when enabled).
  /// Throws ConfigError for invalid specs and TaskFailedError when a
  /// task exhausts max_task_attempts or every worker dies.
  mr::JobResult run(const mr::JobSpec& spec);

  /// kTcp only: the resolved listener address external workers connect
  /// to (valid as soon as the engine is constructed). Null otherwise.
  const Endpoint* listen_endpoint() const;

 private:
  ClusterConfig config_;
  std::unique_ptr<TcpTransport> tcp_;
};

}  // namespace textmr::cluster
