#pragma once

#include <cstdint>
#include <functional>

#include "cluster/straggler.hpp"
#include "mr/job.hpp"

namespace textmr::cluster {

/// Cluster-execution knobs, orthogonal to the JobSpec (which describes
/// the computation; this describes the machinery running it).
struct ClusterConfig {
  /// Worker processes to fork. Each models one shared-nothing node with
  /// one task slot; map_parallelism/reduce_parallelism in the JobSpec are
  /// ignored by this engine (parallelism = workers).
  std::uint32_t num_workers = 2;

  /// Launch speculative duplicate attempts for straggling tasks
  /// (paper §II-A backup tasks). First finished attempt wins; the
  /// duplicate's output commits through the same tmp+rename path, so a
  /// lost race never corrupts output.
  bool speculation = true;

  std::uint32_t heartbeat_interval_ms = 25;
  StragglerPolicy straggler;

  /// How long shutdown waits for a worker to drain and exit before
  /// SIGKILLing it (a straggling duplicate attempt may still be running).
  std::uint64_t shutdown_grace_ms = 10000;

  /// Test seam: runs inside each child process right after fork, before
  /// any task executes — e.g. re-arm failpoints asymmetrically so only
  /// worker 0 is slow. Inherited armed failpoints stay armed in every
  /// worker otherwise.
  std::function<void(std::uint32_t worker_id)> worker_init;

  /// Test seam: observes spawned worker pids in the coordinator
  /// (SIGKILL-based fault injection).
  std::function<void(std::uint32_t worker_id, int pid)> on_worker_spawn;
};

/// Multi-process shared-nothing MapReduce engine (DESIGN.md §10): forks
/// `num_workers` clones of the current process, dispatches map/reduce
/// tasks over per-worker socketpair control channels, shuffles through
/// spill-run files on the shared filesystem, and recovers from worker
/// death and stragglers (heartbeats + speculative execution). Produces
/// byte-identical output to LocalEngine for deterministic applications —
/// the cross-engine differential battery enforces exactly that.
class ClusterEngine {
 public:
  explicit ClusterEngine(ClusterConfig config = {});

  /// Validates `spec`, runs the job across worker processes, returns
  /// outputs + metrics (+ the merged multi-process trace when enabled).
  /// Throws ConfigError for invalid specs and TaskFailedError when a
  /// task exhausts max_task_attempts or every worker dies.
  mr::JobResult run(const mr::JobSpec& spec);

 private:
  ClusterConfig config_;
};

}  // namespace textmr::cluster
