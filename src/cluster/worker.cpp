#include "cluster/worker.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "cluster/protocol.hpp"
#include "common/failpoint.hpp"
#include "common/logging.hpp"
#include "common/mutex.hpp"
#include "mr/task_runner.hpp"

namespace textmr::cluster {
namespace {

/// Trace pid for worker-scoped events (task lifecycle as the worker sees
/// it). Task-scoped events keep the standard map_task_pid/reduce_task_pid
/// conventions, which are globally unique across workers because a task
/// runs its winning attempt on exactly one timeline row.
constexpr std::uint32_t worker_pid(std::uint32_t worker_id) {
  return 200000 + worker_id;
}

/// State shared between the worker's task loop and its heartbeat thread.
/// One mutex serializes both the channel writes (frames from two threads
/// must not interleave) and the current-task fields the beats report.
struct Channel {
  explicit Channel(int fd) : fd(fd) {}

  const int fd;
  textmr::Mutex mu{textmr::LockRank::kCluster, "cluster.worker_channel"};
  textmr::CondVar wake;
  bool stop TEXTMR_GUARDED_BY(mu) = false;
  bool broken TEXTMR_GUARDED_BY(mu) = false;
  TaskKind kind TEXTMR_GUARDED_BY(mu) = TaskKind::kNone;
  std::uint32_t task_id TEXTMR_GUARDED_BY(mu) = 0;
  std::uint32_t attempt TEXTMR_GUARDED_BY(mu) = 0;
  // Written by the map thread mid-task, read by the heartbeat thread.
  std::atomic<double> progress{0.0};

  /// Sends one frame under the channel lock; records a broken peer.
  bool send(std::string_view payload) {
    textmr::MutexLock lock(mu);
    if (broken) return false;
    if (!send_frame(fd, payload)) {
      broken = true;
      return false;
    }
    return true;
  }

  void set_task(TaskKind k, std::uint32_t id, std::uint32_t a) {
    progress.store(0.0, std::memory_order_relaxed);
    textmr::MutexLock lock(mu);
    kind = k;
    task_id = id;
    attempt = a;
  }

  void set_idle() { set_task(TaskKind::kNone, 0, 0); }
};

/// Heartbeat loop: one beat per interval describing what the worker is
/// doing. The `worker.heartbeat` failpoint acts here — kDelay stalls the
/// beats (making the coordinator see a straggler) and any throw-style
/// action drops the beat; neither kills the thread, so the fault model
/// is "heartbeats stop flowing", not "worker dies".
void heartbeat_loop(Channel& channel, std::uint32_t worker_id,
                    std::uint32_t interval_ms) {
  while (true) {
    HeartbeatMsg msg;
    msg.worker_id = worker_id;
    {
      textmr::MutexLock lock(channel.mu);
      if (channel.stop || channel.broken) return;
      channel.wake.wait_for(channel.mu,
                            std::chrono::milliseconds(interval_ms));
      if (channel.stop || channel.broken) return;
      msg.kind = channel.kind;
      msg.id = channel.task_id;
      msg.attempt = channel.attempt;
    }
    msg.progress = channel.progress.load(std::memory_order_relaxed);
    if (failpoint::enabled()) {
      if (auto action = failpoint::consume("worker.heartbeat")) {
        if (action->kind == failpoint::ActionKind::kDelay) {
          failpoint::maybe_delay(*action);
        } else {
          continue;  // drop this beat
        }
      }
    }
    if (!channel.send(encode_heartbeat(msg))) return;
  }
}

}  // namespace

int worker_main(const WorkerContext& ctx, const mr::JobSpec& spec) {
  try {
    Channel channel(ctx.fd);

    // Worker-local trace collector; uploaded to the coordinator at
    // shutdown and merged into the job timeline. All processes share the
    // monotonic clock, so timestamps need no translation.
    std::unique_ptr<obs::TraceCollector> collector;
    obs::TraceBuffer* worker_trace = nullptr;
    if (spec.trace.enabled) {
      collector = std::make_unique<obs::TraceCollector>(spec.trace);
      worker_trace = collector->make_buffer(
          worker_pid(ctx.worker_id), 0, "task-loop",
          "worker-" + std::to_string(ctx.worker_id));
    }

    // This worker models one node: its map tasks share a frozen
    // frequent-key set, persisted so a replacement worker for the same
    // node id reuses it (§III-B, DESIGN.md §10).
    freqbuf::NodeKeyCache node_cache;
    if (spec.freqbuf.enabled && spec.freqbuf.share_across_tasks) {
      node_cache.attach_file(
          spec.scratch_dir /
          ("node-" + std::to_string(ctx.worker_id) + ".keycache"));
    }

    const mr::MemorySplit mem = mr::split_memory(spec);

    std::thread heartbeats(heartbeat_loop, std::ref(channel), ctx.worker_id,
                           ctx.heartbeat_interval_ms);
    // RAII joiner: an exception thrown anywhere in the dispatch loop
    // (corrupt frame, channel IoError) must stop and join the heartbeat
    // thread before the std::thread destructor runs — a joinable
    // destructor calls std::terminate, skipping the crash log below.
    struct HeartbeatJoiner {
      Channel& channel;
      std::thread& thread;
      ~HeartbeatJoiner() {
        {
          textmr::MutexLock lock(channel.mu);
          channel.stop = true;
        }
        channel.wake.notify_all();
        if (thread.joinable()) thread.join();
      }
    } heartbeat_joiner{channel, heartbeats};

    while (true) {
      std::optional<std::string> frame;
      try {
        frame = recv_frame(ctx.fd);
      } catch (const IoError&) {
        break;  // coordinator died mid-frame
      }
      if (!frame.has_value()) break;  // clean EOF: coordinator closed
      WireReader r(*frame);
      const MsgType type = static_cast<MsgType>(r.u8());

      if (type == MsgType::kShutdown) {
        if (collector != nullptr) {
          // Trace rings of finished tasks have no live writers and the
          // heartbeat thread never records, so finishing here is safe.
          channel.send(encode_trace_upload(collector->finish()));
        }
        break;
      }

      if (type == MsgType::kRunMap) {
        const RunTaskMsg msg = decode_run_task(r);
        channel.set_task(TaskKind::kMap, msg.id, msg.attempt);
        obs::record_instant(worker_trace, "cluster", "map_dispatch", "task",
                            static_cast<double>(msg.id), "attempt",
                            static_cast<double>(msg.attempt));
        TaskFailedMsg failure;
        try {
          if (failpoint::enabled()) {
            failpoint::check("cluster.dispatch");
          }
          mr::MapTaskConfig config = mr::make_map_task_config(
              spec, mem, msg.id, msg.attempt, &node_cache, collector.get());
          config.progress = &channel.progress;
          const mr::MapTaskResult result = mr::run_map_task(config);
          channel.set_idle();
          if (!channel.send(encode_map_done(msg.id, msg.attempt, result))) {
            break;
          }
          continue;
        } catch (...) {
          failure.kind = TaskKind::kMap;
          failure.id = msg.id;
          failure.attempt = msg.attempt;
          failure.retryable = mr::is_retryable_error();
          failure.message = mr::current_error_message();
          mr::cleanup_map_attempt(spec, msg.id, msg.attempt);
        }
        channel.set_idle();
        if (!channel.send(encode_task_failed(failure))) break;
        continue;
      }

      if (type == MsgType::kRunReduce) {
        RunReduceMsg msg = decode_run_reduce(r);
        channel.set_task(TaskKind::kReduce, msg.partition, msg.attempt);
        obs::record_instant(worker_trace, "cluster", "reduce_dispatch",
                            "partition", static_cast<double>(msg.partition),
                            "attempt", static_cast<double>(msg.attempt));
        TaskFailedMsg failure;
        try {
          if (failpoint::enabled()) {
            failpoint::check("cluster.dispatch");
          }
          const mr::ReduceTaskConfig config = mr::make_reduce_task_config(
              spec, msg.partition, msg.attempt, std::move(msg.map_outputs),
              collector.get());
          const mr::ReduceTaskResult result = mr::run_reduce_task(config);
          channel.set_idle();
          if (!channel.send(
                  encode_reduce_done(msg.partition, msg.attempt, result))) {
            break;
          }
          continue;
        } catch (...) {
          failure.kind = TaskKind::kReduce;
          failure.id = msg.partition;
          failure.attempt = msg.attempt;
          failure.retryable = mr::is_retryable_error();
          failure.message = mr::current_error_message();
          mr::cleanup_reduce_attempt(mr::reduce_output_path(spec, msg.partition),
                                     msg.attempt);
        }
        channel.set_idle();
        if (!channel.send(encode_task_failed(failure))) break;
        continue;
      }

      TEXTMR_LOG(kWarn) << "worker " << ctx.worker_id
                        << ": unknown message type "
                        << static_cast<int>(type);
    }

    return 0;
  } catch (const std::exception& e) {
    TEXTMR_LOG(kError) << "cluster worker crashed: " << e.what();
    return 1;
  } catch (...) {
    return 1;
  }
}

}  // namespace textmr::cluster
