#include "cluster/worker.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/protocol.hpp"
#include "cluster/shuffle_client.hpp"
#include "cluster/shuffle_server.hpp"
#include "cluster/transport.hpp"
#include "common/failpoint.hpp"
#include "common/logging.hpp"
#include "common/mutex.hpp"
#include "common/stopwatch.hpp"
#include "mr/task_runner.hpp"

namespace textmr::cluster {
namespace {

/// State shared between the worker's task loop and its heartbeat thread.
/// One mutex serializes both the channel writes (frames from two threads
/// must not interleave) and the current-task fields the beats report.
struct Channel {
  Channel(int fd, FrameFormat format, std::int32_t io_timeout_ms)
      : fd(fd), format(format), io_timeout_ms(io_timeout_ms) {}

  const int fd;
  const FrameFormat format;
  const std::int32_t io_timeout_ms;
  textmr::Mutex mu{textmr::LockRank::kCluster, "cluster.worker_channel"};
  textmr::CondVar wake;
  bool stop TEXTMR_GUARDED_BY(mu) = false;
  bool broken TEXTMR_GUARDED_BY(mu) = false;
  TaskKind kind TEXTMR_GUARDED_BY(mu) = TaskKind::kNone;
  std::uint32_t task_id TEXTMR_GUARDED_BY(mu) = 0;
  std::uint32_t attempt TEXTMR_GUARDED_BY(mu) = 0;
  // Cumulative since worker start; the task loop folds each finished
  // task in, the heartbeat thread snapshots it into every beat.
  WorkerMetrics stats TEXTMR_GUARDED_BY(mu);
  // Written by the map thread mid-task, read by the heartbeat thread.
  std::atomic<double> progress{0.0};

  /// Sends one frame under the channel lock; records a broken peer.
  bool send(std::string_view payload) {
    textmr::MutexLock lock(mu);
    return send_locked(payload);
  }

  bool send_locked(std::string_view payload) TEXTMR_REQUIRES(mu) {
    if (broken) return false;
    bool ok = false;
    try {
      ok = send_frame(fd, payload, format, io_timeout_ms);
    } catch (const IoError&) {
      // Timeout or injected net.send fault: the coordinator is as good
      // as gone from this worker's perspective.
      ok = false;
    }
    if (!ok) {
      broken = true;
      return false;
    }
    return true;
  }

  void set_task(TaskKind k, std::uint32_t id, std::uint32_t a) {
    progress.store(0.0, std::memory_order_relaxed);
    textmr::MutexLock lock(mu);
    kind = k;
    task_id = id;
    attempt = a;
  }

  void set_idle() { set_task(TaskKind::kNone, 0, 0); }

  WorkerMetrics stats_snapshot() {
    textmr::MutexLock lock(mu);
    return stats;
  }
};

/// Drains the collector and ships the result as one or more kTraceChunk
/// frames together with the current stats snapshot. With tracing off the
/// final chunk still goes out carrying an empty trace, so the
/// coordinator always gets a terminal stats snapshot and a clean
/// "telemetry complete" signal for this worker.
bool ship_trace_chunks(Channel& channel, obs::TraceCollector* collector,
                       std::uint32_t worker_id, bool final_chunk) {
  // Mid-job chunks only matter when tracing: heartbeats already carry
  // the stats, so an empty per-task chunk would be pure overhead.
  if (collector == nullptr && !final_chunk) return true;
  TraceChunkMsg msg;
  msg.worker_id = worker_id;
  msg.final_chunk = final_chunk;
  if (collector != nullptr) {
    msg.trace = collector->drain();
  }
  std::uint64_t drained_drops = 0;
  for (const auto& ring : msg.trace.ring_drops) drained_drops += ring.dropped;
  {
    textmr::MutexLock lock(channel.mu);
    channel.stats.trace_dropped += drained_drops;
    msg.stats = channel.stats;
    for (const std::string& payload : encode_trace_chunks(msg)) {
      if (!channel.send_locked(payload)) return false;
    }
  }
  return true;
}

/// Heartbeat loop: one beat per interval describing what the worker is
/// doing. The `worker.heartbeat` failpoint acts here — kDelay stalls the
/// beats (making the coordinator see a straggler) and any throw-style
/// action drops the beat; neither kills the thread, so the fault model
/// is "heartbeats stop flowing", not "worker dies".
void heartbeat_loop(Channel& channel, std::uint32_t worker_id,
                    std::uint32_t interval_ms) {
  while (true) {
    HeartbeatMsg msg;
    msg.worker_id = worker_id;
    {
      textmr::MutexLock lock(channel.mu);
      if (channel.stop || channel.broken) return;
      channel.wake.wait_for(channel.mu,
                            std::chrono::milliseconds(interval_ms));
      if (channel.stop || channel.broken) return;
      msg.kind = channel.kind;
      msg.id = channel.task_id;
      msg.attempt = channel.attempt;
      msg.stats = channel.stats;
    }
    msg.progress = channel.progress.load(std::memory_order_relaxed);
    if (failpoint::enabled()) {
      if (auto action = failpoint::consume("worker.heartbeat")) {
        if (action->kind == failpoint::ActionKind::kDelay) {
          failpoint::maybe_delay(*action);
        } else {
          continue;  // drop this beat
        }
      }
    }
    if (!channel.send(encode_heartbeat(msg))) return;
  }
}

}  // namespace

int worker_main(const WorkerContext& ctx, const mr::JobSpec& spec) {
  try {
    Channel channel(ctx.fd, ctx.frame_format, ctx.io_timeout_ms);

    // Network shuffle: serve this worker's committed map runs and tell
    // the coordinator where (kHello). Reducers on other workers pull
    // their partitions from here instead of the shared filesystem.
    std::unique_ptr<ShuffleServer> shuffle;
    if (ctx.shuffle_enabled) {
      ShuffleServer::Options opts;
      opts.listen.host = ctx.shuffle_host;  // port 0: kernel-assigned
      opts.root = spec.scratch_dir.string();
      opts.spill_format = spec.spill_format;
      if (ctx.io_timeout_ms > 0) opts.io_timeout_ms = ctx.io_timeout_ms;
      shuffle = std::make_unique<ShuffleServer>(std::move(opts));
      HelloMsg hello;
      hello.worker_id = ctx.worker_id;
      hello.shuffle = shuffle->endpoint();
      if (!channel.send(encode_hello(hello))) return 1;
    }

    // Worker-local trace collector; drained and shipped to the
    // coordinator as bounded chunks at every task completion and at
    // shutdown, then rebased onto the coordinator's clock via the
    // kClockProbe/kClockSync handshake before the merge.
    std::unique_ptr<obs::TraceCollector> collector;
    obs::TraceBuffer* worker_trace = nullptr;
    if (spec.trace.enabled) {
      collector = std::make_unique<obs::TraceCollector>(spec.trace);
      worker_trace = collector->make_buffer(
          obs::worker_pid(ctx.worker_id), 0, "task-loop",
          "worker-" + std::to_string(ctx.worker_id));
    }

    // This worker models one node: its map tasks share a frozen
    // frequent-key set, persisted so a replacement worker for the same
    // node id reuses it (§III-B, DESIGN.md §10).
    freqbuf::NodeKeyCache node_cache;
    if (spec.freqbuf.enabled && spec.freqbuf.share_across_tasks) {
      node_cache.attach_file(
          spec.scratch_dir /
          ("node-" + std::to_string(ctx.worker_id) + ".keycache"));
    }

    const mr::MemorySplit mem = mr::split_memory(spec);

    // Heavy-key routing plan, broadcast by the coordinator after the
    // clock handshake when skew-aware partitioning produced a non-empty
    // plan. Forked children inherit nothing from the driver's sampling
    // pre-pass, so the frame is the only source of truth; absent it the
    // worker runs pure hash partitioning.
    std::optional<mr::SkewPlan> skew_plan;

    std::thread heartbeats(heartbeat_loop, std::ref(channel), ctx.worker_id,
                           ctx.heartbeat_interval_ms);
    // RAII joiner: an exception thrown anywhere in the dispatch loop
    // (corrupt frame, channel IoError) must stop and join the heartbeat
    // thread before the std::thread destructor runs — a joinable
    // destructor calls std::terminate, skipping the crash log below.
    struct HeartbeatJoiner {
      Channel& channel;
      std::thread& thread;
      ~HeartbeatJoiner() {
        {
          textmr::MutexLock lock(channel.mu);
          channel.stop = true;
        }
        channel.wake.notify_all();
        if (thread.joinable()) thread.join();
      }
    } heartbeat_joiner{channel, heartbeats};

    const std::int32_t idle_timeout_ms =
        ctx.idle_timeout_ms == 0
            ? std::int32_t{-1}
            : static_cast<std::int32_t>(ctx.idle_timeout_ms);
    while (true) {
      std::optional<std::string> frame;
      try {
        frame = recv_frame(ctx.fd, ctx.frame_format, idle_timeout_ms);
      } catch (const IoError& e) {
        // Coordinator died mid-frame, stream corrupt, or (with an idle
        // timeout armed) a dead TCP peer went silent too long. Either
        // way this worker has no coordinator — exit.
        TEXTMR_LOG(kWarn) << "worker " << ctx.worker_id
                          << ": control channel lost: " << e.what();
        break;
      }
      if (!frame.has_value()) break;  // clean EOF: coordinator closed
      WireReader r(*frame);
      const MsgType type = static_cast<MsgType>(r.u8());

      if (type == MsgType::kShutdown) {
        // Trace rings of finished tasks have no live writers and the
        // heartbeat thread never records, so finishing here is safe.
        // The final chunk goes out even with tracing disabled: it
        // carries the terminal stats snapshot and marks this worker's
        // telemetry complete.
        ship_trace_chunks(channel, collector.get(), ctx.worker_id,
                          /*final_chunk=*/true);
        if (collector != nullptr) collector->finish();
        break;
      }

      if (type == MsgType::kClockProbe) {
        const ClockProbeMsg probe = decode_clock_probe(r);
        ClockSyncMsg sync;
        sync.worker_id = ctx.worker_id;
        sync.t_probe = probe.t_send;
        sync.t_worker = monotonic_ns();
        if (!channel.send(encode_clock_sync(sync))) break;
        continue;
      }

      if (type == MsgType::kSkewPlan) {
        skew_plan = decode_skew_plan(r);
        continue;
      }

      if (type == MsgType::kRunMap) {
        const RunTaskMsg msg = decode_run_task(r);
        channel.set_task(TaskKind::kMap, msg.id, msg.attempt);
        obs::record_instant(worker_trace, "cluster", "map_dispatch", "task",
                            static_cast<double>(msg.id), "attempt",
                            static_cast<double>(msg.attempt));
        TaskFailedMsg failure;
        bool ok = false;
        mr::MapTaskResult result;
        {
          // Worker-lane busy span: the analyzer derives per-worker
          // utilization from these, so the span must close (destructor)
          // on the failure path too.
          obs::SpanTimer exec(worker_trace, "cluster", "map_exec");
          exec.arg("task", static_cast<double>(msg.id));
          exec.arg("attempt", static_cast<double>(msg.attempt));
          try {
            if (failpoint::enabled()) {
              failpoint::check("cluster.dispatch");
            }
            mr::MapTaskConfig config = mr::make_map_task_config(
                spec, mem, msg.id, msg.attempt, &node_cache, collector.get(),
                skew_plan.has_value() ? &*skew_plan : nullptr);
            config.progress = &channel.progress;
            result = mr::run_map_task(config);
            ok = true;
          } catch (...) {
            failure.kind = TaskKind::kMap;
            failure.id = msg.id;
            failure.attempt = msg.attempt;
            failure.retryable = mr::is_retryable_error();
            failure.message = mr::current_error_message();
            mr::cleanup_map_attempt(spec, msg.id, msg.attempt);
          }
        }
        {
          textmr::MutexLock lock(channel.mu);
          if (ok) {
            channel.stats.records += result.map_thread.input_records;
            channel.stats.bytes += result.map_thread.input_bytes;
            channel.stats.spills += result.spills;
            channel.stats.tasks_completed += 1;
            channel.stats.task_latency_ns.record(result.wall_ns);
          } else {
            channel.stats.task_failures += 1;
          }
        }
        channel.set_idle();
        if (ok) {
          if (!channel.send(encode_map_done(msg.id, msg.attempt, result))) {
            break;
          }
        } else {
          if (!channel.send(encode_task_failed(failure))) break;
        }
        if (!ship_trace_chunks(channel, collector.get(), ctx.worker_id,
                               /*final_chunk=*/false)) {
          break;
        }
        continue;
      }

      if (type == MsgType::kRunReduce) {
        RunReduceMsg msg = decode_run_reduce(r);
        channel.set_task(TaskKind::kReduce, msg.partition, msg.attempt);
        obs::record_instant(worker_trace, "cluster", "reduce_dispatch",
                            "partition", static_cast<double>(msg.partition),
                            "attempt", static_cast<double>(msg.attempt));
        TaskFailedMsg failure;
        bool ok = false;
        mr::ReduceTaskResult result;
        {
          obs::SpanTimer exec(worker_trace, "cluster", "reduce_exec");
          exec.arg("partition", static_cast<double>(msg.partition));
          exec.arg("attempt", static_cast<double>(msg.attempt));
          try {
            if (failpoint::enabled()) {
              failpoint::check("cluster.dispatch");
            }
            // Network-first shuffle when the coordinator told us who
            // owns each run: pull from the owning worker's shuffle
            // server; fall back to the shared-filesystem read when the
            // owner is gone (speculation SIGKILLs winners' losers, and
            // a loser may own committed map output — DESIGN.md §14).
            mr::ShuffleFetcher fetcher;
            if (!msg.sources.empty()) {
              std::vector<Endpoint> sources = std::move(msg.sources);
              const io::SpillFormat format = spec.spill_format;
              ShuffleClient client;
              fetcher = [client = std::move(client),
                         sources = std::move(sources), format](
                            std::uint32_t run_index,
                            const io::SpillRunInfo& run,
                            std::uint32_t partition) {
                mr::ShuffleFetchResult out;
                if (run_index < sources.size() &&
                    sources[run_index].valid()) {
                  if (auto bytes =
                          client.fetch(sources[run_index], run, partition)) {
                    out.bytes = std::move(*bytes);
                    out.over_wire = true;
                    return out;
                  }
                  TEXTMR_LOG(kWarn)
                      << "shuffle fetch of " << run.path << "#" << partition
                      << " from " << sources[run_index].to_string()
                      << " exhausted retries; falling back to local read";
                }
                out.bytes = io::SpillRunReader(run.path, format)
                                .read_partition(partition);
                return out;
              };
            }
            const mr::ReduceTaskConfig config = mr::make_reduce_task_config(
                spec, msg.partition, msg.attempt, std::move(msg.map_outputs),
                collector.get(), skew_plan.has_value() ? &*skew_plan : nullptr,
                std::move(fetcher));
            result = mr::run_reduce_task(config);
            ok = true;
          } catch (...) {
            failure.kind = TaskKind::kReduce;
            failure.id = msg.partition;
            failure.attempt = msg.attempt;
            failure.retryable = mr::is_retryable_error();
            failure.message = mr::current_error_message();
            mr::cleanup_reduce_attempt(
                mr::reduce_task_output_path(
                    spec, skew_plan.has_value() ? &*skew_plan : nullptr,
                    msg.partition),
                msg.attempt);
          }
        }
        {
          textmr::MutexLock lock(channel.mu);
          if (ok) {
            channel.stats.records += result.metrics.reduce_input_records;
            channel.stats.bytes += result.metrics.shuffled_bytes;
            channel.stats.tasks_completed += 1;
            channel.stats.task_latency_ns.record(result.wall_ns);
          } else {
            channel.stats.task_failures += 1;
          }
        }
        channel.set_idle();
        if (ok) {
          if (!channel.send(
                  encode_reduce_done(msg.partition, msg.attempt, result))) {
            break;
          }
        } else {
          if (!channel.send(encode_task_failed(failure))) break;
        }
        if (!ship_trace_chunks(channel, collector.get(), ctx.worker_id,
                               /*final_chunk=*/false)) {
          break;
        }
        continue;
      }

      TEXTMR_LOG(kWarn) << "worker " << ctx.worker_id
                        << ": unknown message type "
                        << static_cast<int>(type);
    }

    return 0;
  } catch (const std::exception& e) {
    TEXTMR_LOG(kError) << "cluster worker crashed: " << e.what();
    return 1;
  } catch (...) {
    return 1;
  }
}

int run_remote_worker(const Endpoint& coordinator, const mr::JobSpec& spec,
                      const RemoteWorkerOptions& options) {
  const int fd = tcp_connect(coordinator, options.connect_timeout_ms);
  WorkerContext ctx;
  try {
    const auto frame =
        recv_frame(fd, FrameFormat::kChecksummed, options.connect_timeout_ms);
    if (!frame.has_value()) {
      throw IoError("coordinator closed before sending welcome");
    }
    WireReader r(*frame);
    const MsgType type = static_cast<MsgType>(r.u8());
    if (type != MsgType::kWelcome) {
      throw FormatError("expected welcome from coordinator, got " +
                        std::string(msg_type_name(type)));
    }
    const WelcomeMsg welcome = decode_welcome(r);
    ctx.fd = fd;
    ctx.worker_id = welcome.worker_id;
    ctx.heartbeat_interval_ms = welcome.heartbeat_interval_ms;
    ctx.frame_format = FrameFormat::kChecksummed;
    ctx.shuffle_enabled = true;
    ctx.shuffle_host = options.shuffle_host;
    ctx.io_timeout_ms = options.io_timeout_ms;
    ctx.idle_timeout_ms = options.idle_timeout_ms;
  } catch (...) {
    ::close(fd);
    throw;
  }
  const int code = worker_main(ctx, spec);
  ::close(fd);
  return code;
}

}  // namespace textmr::cluster
