#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mr/map_task.hpp"
#include "mr/reduce_task.hpp"
#include "mr/skew_partitioner.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace textmr::cluster {

/// Control protocol between the cluster coordinator and its worker
/// processes (DESIGN.md §10, §14). Transport: one stream channel per
/// worker — an AF_UNIX socketpair or a TCP connection, behind the
/// Transport/Connection interface in transport.hpp — carrying
/// little-endian u32 length-prefixed frames; the first payload byte is
/// the message type. TCP frames additionally carry a CRC32 of the
/// payload (FrameFormat::kChecksummed). Input splits and final part
/// files still move through the shared filesystem, but map-output
/// partitions are pulled over the network from per-worker shuffle
/// servers (kShuffleFetch/kShuffleData) when the TCP transport is in
/// force, so control frames stay small: telemetry ships as bounded
/// trace chunks at task boundaries instead of one monolithic upload.

enum class MsgType : std::uint8_t {
  // coordinator -> worker
  kRunMap = 1,      // u32 task, u32 attempt
  kRunReduce = 2,   // u32 partition, u32 attempt
  kShutdown = 3,    // no payload; worker ships final telemetry and exits
  kClockProbe = 4,  // u64 coordinator monotonic_ns at send (clock handshake)
  kSkewPlan = 5,    // heavy-key routing plan broadcast before the map phase
  kWelcome = 6,     // assigns an externally joining worker its id
  // worker -> coordinator
  kHeartbeat = 10,   // worker liveness + progress + live counter snapshot
  kMapDone = 11,     // u32 task, u32 attempt, MapTaskResult
  kReduceDone = 12,  // u32 partition, u32 attempt, ReduceTaskResult
  kTaskFailed = 13,  // one attempt failed (the worker itself is healthy)
  kClockSync = 14,   // probe echo + worker monotonic_ns (clock handshake)
  kTraceChunk = 15,  // one bounded slice of the worker's trace + stats
  kHello = 16,       // worker's shuffle-server endpoint advertisement
  // reducer -> shuffle server (separate per-fetch TCP connections)
  kShuffleFetch = 20,  // str run_path, u32 partition
  kShuffleData = 21,   // u64 records + the partition's raw frame bytes
  kShuffleError = 22,  // u8 retryable, str message
};

/// Wire name for logs and the analyzer; lint checks exhaustiveness.
const char* msg_type_name(MsgType type);

/// What kind of task an id refers to in heartbeat / failure messages.
enum class TaskKind : std::uint8_t { kNone = 0, kMap = 1, kReduce = 2 };

struct RunTaskMsg {
  std::uint32_t id = 0;  // map task id or reduce partition
  std::uint32_t attempt = 0;
};

/// A network address: a worker's shuffle server or the coordinator's
/// TCP listener. port 0 means "none" (e.g. a socketpair worker that
/// serves no shuffle partitions).
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  bool valid() const { return port != 0 && !host.empty(); }
  std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
};

/// Reduce dispatch also names the map-output runs to shuffle from,
/// ordered by map task id — the ordering every engine must use for
/// byte-identical merges. `sources` (empty or exactly parallel to
/// `map_outputs`) names the shuffle server holding each run; an invalid
/// endpoint — or no sources at all — means the reducer reads that run
/// from the shared filesystem instead (socketpair mode).
struct RunReduceMsg {
  std::uint32_t partition = 0;
  std::uint32_t attempt = 0;
  std::vector<io::SpillRunInfo> map_outputs;
  std::vector<Endpoint> sources;
};

/// Coordinator -> worker, first frame on an externally joined (TCP
/// --connect) channel: assigns the worker its node id and the heartbeat
/// cadence the coordinator expects.
struct WelcomeMsg {
  std::uint32_t worker_id = 0;
  std::uint32_t heartbeat_interval_ms = 25;
};

/// Worker -> coordinator, sent once at startup when the worker runs a
/// shuffle server: advertises the endpoint reducers should pull this
/// worker's map-output partitions from.
struct HelloMsg {
  std::uint32_t worker_id = 0;
  Endpoint shuffle;
};

/// Reducer -> shuffle server: one partition of one map-output run. The
/// run is named by the path the kMapDone frame reported; the server
/// only serves paths under its scratch root.
struct ShuffleFetchMsg {
  std::string run_path;
  std::uint32_t partition = 0;
};

/// Shuffle server -> reducer: the partition's raw record-stream frames
/// (exactly the bytes SpillRunReader::read_partition returns).
struct ShuffleDataMsg {
  std::uint64_t records = 0;
  std::string bytes;
};

/// Shuffle server -> reducer on failure. Retryable errors (I/O, a
/// stalled disk) are worth another fetch attempt; non-retryable ones
/// (bad request, path outside the scratch root) are not.
struct ShuffleErrorMsg {
  bool retryable = true;
  std::string message;
};

/// Live counter snapshot a worker piggybacks on every heartbeat and
/// trace chunk. Values are cumulative since worker start — not deltas —
/// so the coordinator's view is always "latest wins" and a dropped or
/// reordered frame can never desynchronize the aggregate.
struct WorkerMetrics {
  std::uint64_t records = 0;  // input records consumed by finished tasks
  std::uint64_t bytes = 0;    // input/shuffle bytes consumed
  std::uint64_t spills = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t task_failures = 0;
  std::uint64_t trace_dropped = 0;  // ring-overflow drops shipped so far
  obs::LatencyHistogram task_latency_ns;  // wall time per finished task
};

struct HeartbeatMsg {
  std::uint32_t worker_id = 0;
  TaskKind kind = TaskKind::kNone;  // kNone: idle worker
  std::uint32_t id = 0;
  std::uint32_t attempt = 0;
  double progress = 0.0;  // input fraction consumed (map tasks)
  WorkerMetrics stats;
};

struct TaskFailedMsg {
  TaskKind kind = TaskKind::kNone;
  std::uint32_t id = 0;
  std::uint32_t attempt = 0;
  bool retryable = true;
  std::string message;
};

// ---- clock handshake ------------------------------------------------------

/// Coordinator -> worker right after spawn: carries the coordinator's
/// monotonic clock at send time.
struct ClockProbeMsg {
  std::uint64_t t_send = 0;
};

/// Worker's reply: echoes the probe and stamps its own clock.
struct ClockSyncMsg {
  std::uint32_t worker_id = 0;
  std::uint64_t t_probe = 0;   // echoed ClockProbeMsg::t_send
  std::uint64_t t_worker = 0;  // worker monotonic_ns at echo
};

/// NTP-style two-sample offset estimate: the worker stamped t_worker
/// somewhere between the coordinator's t_send and t_recv, so assuming a
/// symmetric channel its clock reads t_worker when the coordinator's
/// reads (t_send + t_recv) / 2. Returns worker_clock - coordinator_clock;
/// the estimate error is bounded by half the round-trip time. Forked
/// workers share CLOCK_MONOTONIC so the offset is ~0 today, but the
/// handshake keeps merged traces correct for any future transport where
/// workers live on other machines (ROADMAP item 2's resident service).
inline std::int64_t estimate_clock_offset(std::uint64_t t_send,
                                          std::uint64_t t_recv,
                                          std::uint64_t t_worker) {
  const auto midpoint =
      static_cast<std::int64_t>(t_send / 2 + t_recv / 2 +
                                (t_send % 2 + t_recv % 2) / 2);
  return static_cast<std::int64_t>(t_worker) - midpoint;
}

// ---- trace chunks ---------------------------------------------------------

/// One bounded slice of a worker's telemetry. Workers drain their
/// TraceCollector at task completion and at shutdown, split the drained
/// events into frames of at most kTraceChunkPayloadTarget bytes, and
/// ship each as a self-contained chunk: the coordinator can merge them
/// in arrival order (merge_trace sums drop deltas and dedupes names).
/// `final_chunk` marks the worker's last telemetry before exit — a
/// worker that dies without sending it leaves the job's telemetry
/// flagged incomplete instead of failing the merge.
struct TraceChunkMsg {
  std::uint32_t worker_id = 0;
  bool final_chunk = false;
  WorkerMetrics stats;   // cumulative snapshot at send time
  obs::TraceData trace;  // events since the previous chunk
};

/// Target payload size for one trace chunk: large enough that even a
/// drain of a full default ring fits in a couple of frames, small enough
/// (1/64 of kMaxFramePayload) that chunked shipping never risks the
/// frame cap and the coordinator's read loop stays responsive.
constexpr std::size_t kTraceChunkPayloadTarget = 4u * 1024 * 1024;

// ---- serialization --------------------------------------------------------

/// Append-only little-endian encoder for frame payloads.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(std::string_view v);

  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Matching decoder; throws FormatError on truncated or trailing bytes.
class WireReader {
 public:
  explicit WireReader(std::string_view in) : in_(in) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  /// Consumes and returns every remaining byte (unframed tail payloads,
  /// e.g. the partition bytes of a kShuffleData frame).
  std::string rest();

  bool done() const { return in_.empty(); }
  void expect_done() const;

 private:
  std::string_view in_;
};

// Message payload encode/decode. Encoders produce the payload including
// the leading type byte; decoders expect the byte already consumed.
std::string encode_run_task(MsgType type, const RunTaskMsg& msg);
RunTaskMsg decode_run_task(WireReader& r);

std::string encode_run_reduce(const RunReduceMsg& msg);
RunReduceMsg decode_run_reduce(WireReader& r);

std::string encode_heartbeat(const HeartbeatMsg& msg);
HeartbeatMsg decode_heartbeat(WireReader& r);

std::string encode_task_failed(const TaskFailedMsg& msg);
TaskFailedMsg decode_task_failed(WireReader& r);

std::string encode_map_done(std::uint32_t task, std::uint32_t attempt,
                            const mr::MapTaskResult& result);
void decode_map_done(WireReader& r, std::uint32_t& task,
                     std::uint32_t& attempt, mr::MapTaskResult& result);

std::string encode_reduce_done(std::uint32_t partition, std::uint32_t attempt,
                               const mr::ReduceTaskResult& result);
void decode_reduce_done(WireReader& r, std::uint32_t& partition,
                        std::uint32_t& attempt, mr::ReduceTaskResult& result);

std::string encode_clock_probe(const ClockProbeMsg& msg);
ClockProbeMsg decode_clock_probe(WireReader& r);

/// Skew plan broadcast (DESIGN.md §12): the coordinator computes the
/// plan once and every worker routes with the identical copy — the
/// cross-engine byte-identity contract depends on it. Only sent when the
/// plan is non-empty; workers without one run pure hash partitioning.
std::string encode_skew_plan(const mr::SkewPlan& plan);
mr::SkewPlan decode_skew_plan(WireReader& r);

std::string encode_clock_sync(const ClockSyncMsg& msg);
ClockSyncMsg decode_clock_sync(WireReader& r);

std::string encode_welcome(const WelcomeMsg& msg);
WelcomeMsg decode_welcome(WireReader& r);

std::string encode_hello(const HelloMsg& msg);
HelloMsg decode_hello(WireReader& r);

std::string encode_shuffle_fetch(const ShuffleFetchMsg& msg);
ShuffleFetchMsg decode_shuffle_fetch(WireReader& r);

std::string encode_shuffle_data(const ShuffleDataMsg& msg);
ShuffleDataMsg decode_shuffle_data(WireReader& r);

std::string encode_shuffle_error(const ShuffleErrorMsg& msg);
ShuffleErrorMsg decode_shuffle_error(WireReader& r);

/// Splits `msg` into one or more kTraceChunk frame payloads, each at
/// most ~max_payload bytes. Every frame is independently decodable and
/// carries the stats snapshot; trace metadata (names, drop deltas) rides
/// only on the first frame and the final_chunk flag only on the last.
std::vector<std::string> encode_trace_chunks(
    const TraceChunkMsg& msg,
    std::size_t max_payload = kTraceChunkPayloadTarget);
/// Decoded events point into `msg.trace.string_pool` (owned storage).
TraceChunkMsg decode_trace_chunk(WireReader& r);

// ---- framed socket I/O ----------------------------------------------------

/// Sanity cap on a frame's payload length. The largest legitimate frame
/// is a trace chunk (bounded by kTraceChunkPayloadTarget plus one event's
/// overshoot); a 4-byte prefix read from a desynchronized or corrupted
/// stream could otherwise demand an allocation of up to ~4 GiB.
/// Oversized frames raise IoError instead.
constexpr std::uint32_t kMaxFramePayload = 256u * 1024 * 1024;

/// On-the-wire frame layout (DESIGN.md §14). kLegacy is the original
/// socketpair format: [u32 len][payload]. kChecksummed — the TCP
/// transport and the shuffle protocol — adds a CRC32 of the payload
/// between the length and the bytes: [u32 len][u32 crc][payload]. A
/// mismatch on receive raises IoError; the peer is treated as gone
/// (control channel) or the fetch is retried (shuffle client).
enum class FrameFormat : std::uint8_t { kLegacy, kChecksummed };

/// CRC-32 (IEEE 802.3, poly 0xEDB88320) over `data`.
std::uint32_t crc32(std::string_view data);

/// Sends one length-prefixed frame, blocking until fully written (polls
/// on EAGAIN so it also works on non-blocking fds). Returns false if the
/// peer is gone (EPIPE/ECONNRESET); throws IoError on other errors, and
/// on missing the deadline when `timeout_ms` >= 0 (a dead TCP peer that
/// stops draining its socket must surface as an error, not a coordinator
/// thread blocked in poll forever). The `net.send` failpoint acts here.
bool send_frame(int fd, std::string_view payload, FrameFormat format,
                std::int32_t timeout_ms);
inline bool send_frame(int fd, std::string_view payload) {
  return send_frame(fd, payload, FrameFormat::kLegacy, -1);
}

/// Blocking receive of one full frame; nullopt on clean EOF. Throws
/// IoError on errors, a torn frame, a checksum mismatch, or — with
/// `timeout_ms` >= 0 — when no full frame arrives before the deadline.
/// Worker-side and shuffle-client only (the coordinator reads through
/// FrameDecoder so one slow worker cannot stall it). The `net.recv`
/// failpoint acts here.
std::optional<std::string> recv_frame(int fd, FrameFormat format,
                                      std::int32_t timeout_ms);
inline std::optional<std::string> recv_frame(int fd) {
  return recv_frame(fd, FrameFormat::kLegacy, -1);
}

/// Incremental frame reassembly over a non-blocking fd: feed() raw bytes
/// as poll() reports them readable, next() yields completed frames
/// (verifying checksums in kChecksummed format — a mismatch throws
/// IoError).
class FrameDecoder {
 public:
  FrameDecoder() = default;
  explicit FrameDecoder(FrameFormat format) : format_(format) {}

  void feed(const char* data, std::size_t n) { buf_.append(data, n); }
  std::optional<std::string> next();

 private:
  FrameFormat format_ = FrameFormat::kLegacy;
  std::string buf_;
};

}  // namespace textmr::cluster
