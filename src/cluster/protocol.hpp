#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mr/map_task.hpp"
#include "mr/reduce_task.hpp"
#include "obs/trace.hpp"

namespace textmr::cluster {

/// Control protocol between the cluster coordinator and its worker
/// processes (DESIGN.md §10). Transport: one AF_UNIX stream socketpair
/// per worker carrying little-endian u32 length-prefixed frames; the
/// first payload byte is the message type. Bulk data (input splits,
/// spill runs, final part files) never crosses the channel — it moves
/// through the shared filesystem, exactly like a DFS-backed deployment —
/// so frames stay small except for the one trace upload at shutdown.

enum class MsgType : std::uint8_t {
  // coordinator -> worker
  kRunMap = 1,     // u32 task, u32 attempt
  kRunReduce = 2,  // u32 partition, u32 attempt
  kShutdown = 3,   // no payload; worker uploads its trace and exits
  // worker -> coordinator
  kHeartbeat = 10,    // worker liveness + progress of the running task
  kMapDone = 11,      // u32 task, u32 attempt, MapTaskResult
  kReduceDone = 12,   // u32 partition, u32 attempt, ReduceTaskResult
  kTaskFailed = 13,   // one attempt failed (the worker itself is healthy)
  kTraceUpload = 14,  // worker's TraceData, sent once before exit
};

/// What kind of task an id refers to in heartbeat / failure messages.
enum class TaskKind : std::uint8_t { kNone = 0, kMap = 1, kReduce = 2 };

struct RunTaskMsg {
  std::uint32_t id = 0;  // map task id or reduce partition
  std::uint32_t attempt = 0;
};

/// Reduce dispatch also names the map-output runs to shuffle from,
/// ordered by map task id — the ordering every engine must use for
/// byte-identical merges.
struct RunReduceMsg {
  std::uint32_t partition = 0;
  std::uint32_t attempt = 0;
  std::vector<io::SpillRunInfo> map_outputs;
};

struct HeartbeatMsg {
  std::uint32_t worker_id = 0;
  TaskKind kind = TaskKind::kNone;  // kNone: idle worker
  std::uint32_t id = 0;
  std::uint32_t attempt = 0;
  double progress = 0.0;  // input fraction consumed (map tasks)
};

struct TaskFailedMsg {
  TaskKind kind = TaskKind::kNone;
  std::uint32_t id = 0;
  std::uint32_t attempt = 0;
  bool retryable = true;
  std::string message;
};

// ---- serialization --------------------------------------------------------

/// Append-only little-endian encoder for frame payloads.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(std::string_view v);

  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Matching decoder; throws FormatError on truncated or trailing bytes.
class WireReader {
 public:
  explicit WireReader(std::string_view in) : in_(in) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  bool done() const { return in_.empty(); }
  void expect_done() const;

 private:
  std::string_view in_;
};

// Message payload encode/decode. Encoders produce the payload including
// the leading type byte; decoders expect the byte already consumed.
std::string encode_run_task(MsgType type, const RunTaskMsg& msg);
RunTaskMsg decode_run_task(WireReader& r);

std::string encode_run_reduce(const RunReduceMsg& msg);
RunReduceMsg decode_run_reduce(WireReader& r);

std::string encode_heartbeat(const HeartbeatMsg& msg);
HeartbeatMsg decode_heartbeat(WireReader& r);

std::string encode_task_failed(const TaskFailedMsg& msg);
TaskFailedMsg decode_task_failed(WireReader& r);

std::string encode_map_done(std::uint32_t task, std::uint32_t attempt,
                            const mr::MapTaskResult& result);
void decode_map_done(WireReader& r, std::uint32_t& task,
                     std::uint32_t& attempt, mr::MapTaskResult& result);

std::string encode_reduce_done(std::uint32_t partition, std::uint32_t attempt,
                               const mr::ReduceTaskResult& result);
void decode_reduce_done(WireReader& r, std::uint32_t& partition,
                        std::uint32_t& attempt, mr::ReduceTaskResult& result);

std::string encode_trace_upload(const obs::TraceData& trace);
/// Decoded events point into `trace.string_pool` (owned storage).
obs::TraceData decode_trace_upload(WireReader& r);

// ---- framed socket I/O ----------------------------------------------------

/// Sanity cap on a frame's payload length. The largest legitimate frame
/// is a shutdown trace upload (a few MB at worst); a 4-byte prefix read
/// from a desynchronized or corrupted stream could otherwise demand an
/// allocation of up to ~4 GiB. Oversized frames raise IoError instead.
constexpr std::uint32_t kMaxFramePayload = 256u * 1024 * 1024;

/// Sends one length-prefixed frame, blocking until fully written (polls
/// on EAGAIN so it also works on non-blocking fds). Returns false if the
/// peer is gone (EPIPE/ECONNRESET); throws IoError on other errors.
bool send_frame(int fd, std::string_view payload);

/// Blocking receive of one full frame; nullopt on clean EOF. Throws
/// IoError on errors or a torn frame. Worker-side only (the coordinator
/// reads through FrameDecoder so one slow worker cannot stall it).
std::optional<std::string> recv_frame(int fd);

/// Incremental frame reassembly over a non-blocking fd: feed() raw bytes
/// as poll() reports them readable, next() yields completed frames.
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t n) { buf_.append(data, n); }
  std::optional<std::string> next();

 private:
  std::string buf_;
};

}  // namespace textmr::cluster
