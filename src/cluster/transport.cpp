#include "cluster/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/stopwatch.hpp"

namespace textmr::cluster {

const char* transport_kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSocketpair: return "socketpair";
    case TransportKind::kTcp: return "tcp";
  }
  return "unknown";
}

TransportKind parse_transport_kind(const std::string& name) {
  if (name == "socketpair") return TransportKind::kSocketpair;
  if (name == "tcp") return TransportKind::kTcp;
  throw ConfigError("unknown transport '" + name +
                    "' (expected socketpair or tcp)");
}

// ---- Connection -----------------------------------------------------------

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    format_ = other.format_;
    io_timeout_ms_ = other.io_timeout_ms_;
  }
  return *this;
}

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Connection::release_fd() { return std::exchange(fd_, -1); }

bool Connection::drain(FrameDecoder& decoder) const {
  char buf[65536];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return false;
    throw IoError("cluster recv failed: " + std::string(strerror(errno)));
  }
}

// ---- socketpair transport -------------------------------------------------

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw IoError("fcntl(O_NONBLOCK) failed: " + std::string(strerror(errno)));
  }
}

void set_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) < 0) {
    throw IoError("fcntl(~O_NONBLOCK) failed: " +
                  std::string(strerror(errno)));
  }
}

class SocketpairTransport final : public Transport {
 public:
  explicit SocketpairTransport(std::int32_t io_timeout_ms)
      : io_timeout_ms_(io_timeout_ms) {}

  TransportKind kind() const override { return TransportKind::kSocketpair; }
  FrameFormat frame_format() const override { return FrameFormat::kLegacy; }

  WorkerChannel make_worker_channel() override {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      throw IoError("socketpair failed: " + std::string(strerror(errno)));
    }
    set_nonblocking(sv[0]);
    WorkerChannel channel;
    channel.coordinator = Connection(sv[0], FrameFormat::kLegacy,
                                     io_timeout_ms_);
    channel.child_fd = sv[1];
    return channel;
  }

  void on_child_fork(int /*keep_fd*/) override {}

 private:
  std::int32_t io_timeout_ms_;
};

}  // namespace

std::unique_ptr<Transport> make_socketpair_transport(
    std::int32_t io_timeout_ms) {
  return std::make_unique<SocketpairTransport>(io_timeout_ms);
}

// ---- TCP helpers ----------------------------------------------------------

namespace {

sockaddr_in make_addr(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    throw ConfigError("invalid IPv4 address '" + endpoint.host + "'");
  }
  return addr;
}

void set_nodelay(int fd) {
  // Coordinator frames are small and latency-sensitive (heartbeats,
  // dispatch); Nagle would batch them behind unacked data.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

int tcp_listen(const Endpoint& endpoint, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError("socket failed: " + std::string(strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(endpoint);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    throw IoError("bind " + endpoint.to_string() + " failed: " + err);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    throw IoError("listen on " + endpoint.to_string() + " failed: " + err);
  }
  return fd;
}

int tcp_connect(const Endpoint& endpoint, std::int32_t timeout_ms) {
  if (failpoint::enabled()) {
    if (const auto action = failpoint::consume("net.connect")) {
      if (action->kind == failpoint::ActionKind::kDelay) {
        failpoint::maybe_delay(*action);
      } else {
        throw failpoint::InjectedFault("net.connect");
      }
    }
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError("socket failed: " + std::string(strerror(errno)));
  }
  sockaddr_in addr = make_addr(endpoint);
  // Non-blocking connect so the timeout is enforceable; restored to
  // blocking afterwards (worker-side channels rely on blocking I/O).
  set_nonblocking(fd);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const std::string err = strerror(errno);
    ::close(fd);
    throw IoError("connect " + endpoint.to_string() + " failed: " + err);
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const std::uint64_t deadline_ns =
        timeout_ms < 0 ? 0
                       : monotonic_ns() + static_cast<std::uint64_t>(
                                              timeout_ms) * 1000000ull;
    while (true) {
      int wait = -1;
      if (deadline_ns != 0) {
        const std::uint64_t now = monotonic_ns();
        if (now >= deadline_ns) {
          ::close(fd);
          throw IoError("connect " + endpoint.to_string() + " timed out");
        }
        wait = static_cast<int>((deadline_ns - now) / 1000000ull + 1);
      }
      const int prc = ::poll(&pfd, 1, wait);
      if (prc > 0) break;
      if (prc == 0) continue;  // re-check the deadline
      if (errno != EINTR) {
        const std::string err = strerror(errno);
        ::close(fd);
        throw IoError("connect poll failed: " + err);
      }
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      ::close(fd);
      throw IoError("connect " + endpoint.to_string() +
                    " failed: " + strerror(so_error != 0 ? so_error : errno));
    }
  }
  set_blocking(fd);
  set_nodelay(fd);
  return fd;
}

int tcp_accept(int listen_fd, std::int32_t timeout_ms) {
  const std::uint64_t deadline_ns =
      timeout_ms < 0 ? 0
                     : monotonic_ns() +
                           static_cast<std::uint64_t>(timeout_ms) * 1000000ull;
  while (true) {
    int wait = -1;
    if (deadline_ns != 0) {
      const std::uint64_t now = monotonic_ns();
      if (now >= deadline_ns) {
        throw IoError("accept timed out (no worker connected)");
      }
      wait = static_cast<int>((deadline_ns - now) / 1000000ull + 1);
    }
    pollfd pfd{listen_fd, POLLIN, 0};
    const int prc = ::poll(&pfd, 1, wait);
    if (prc == 0) continue;  // re-check the deadline
    if (prc < 0) {
      if (errno == EINTR) continue;
      throw IoError("accept poll failed: " + std::string(strerror(errno)));
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return fd;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      continue;
    }
    throw IoError("accept failed: " + std::string(strerror(errno)));
  }
}

Endpoint local_endpoint(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw IoError("getsockname failed: " + std::string(strerror(errno)));
  }
  char host[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host));
  Endpoint endpoint;
  endpoint.host = host;
  endpoint.port = ntohs(addr.sin_port);
  return endpoint;
}

// ---- TCP transport --------------------------------------------------------

TcpTransport::TcpTransport(const Endpoint& listen, std::int32_t io_timeout_ms)
    : io_timeout_ms_(io_timeout_ms) {
  listen_fd_ = tcp_listen(listen);
  endpoint_ = local_endpoint(listen_fd_);
}

TcpTransport::~TcpTransport() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Transport::WorkerChannel TcpTransport::make_worker_channel() {
  // Deterministic pre-fork pairing: dial our own listener, then accept
  // the matching connection. Both ends exist before fork(), so no
  // identification handshake is needed to know which worker owns which
  // coordinator-side fd.
  const int child_fd = tcp_connect(endpoint_, io_timeout_ms_);
  const int coord_fd = tcp_accept(listen_fd_, io_timeout_ms_);
  set_nonblocking(coord_fd);
  WorkerChannel channel;
  channel.coordinator = Connection(coord_fd, FrameFormat::kChecksummed,
                                   io_timeout_ms_);
  channel.child_fd = child_fd;
  return channel;
}

void TcpTransport::on_child_fork(int keep_fd) {
  // The child must not hold the coordinator's listener open: a later
  // coordinator restart would find the port busy, and accept() races
  // would be possible.
  if (listen_fd_ >= 0 && listen_fd_ != keep_fd) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

Connection TcpTransport::accept_worker(std::int32_t timeout_ms) {
  const int fd = tcp_accept(listen_fd_, timeout_ms);
  set_nonblocking(fd);
  return Connection(fd, FrameFormat::kChecksummed, io_timeout_ms_);
}

std::unique_ptr<TcpTransport> make_tcp_transport(const Endpoint& listen,
                                                 std::int32_t io_timeout_ms) {
  return std::make_unique<TcpTransport>(listen, io_timeout_ms);
}

}  // namespace textmr::cluster
