#include "cluster/shuffle_client.hpp"

#include <unistd.h>

#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/logging.hpp"

namespace textmr::cluster {

namespace {

/// One connect + request + reply round trip. Throws on any failure;
/// returns nullopt only for a NON-retryable server error.
std::optional<std::string> fetch_once(const Endpoint& source,
                                      const io::SpillRunInfo& run,
                                      std::uint32_t partition,
                                      std::int32_t timeout_ms) {
  if (failpoint::enabled()) {
    if (const auto action = failpoint::consume("shuffle.fetch")) {
      if (action->kind == failpoint::ActionKind::kDelay) {
        failpoint::maybe_delay(*action);
      } else {
        throw failpoint::InjectedFault("shuffle.fetch");
      }
    }
  }
  const int fd = tcp_connect(source, timeout_ms);
  std::optional<std::string> result;
  try {
    ShuffleFetchMsg fetch;
    fetch.run_path = run.path;
    fetch.partition = partition;
    if (!send_frame(fd, encode_shuffle_fetch(fetch),
                    FrameFormat::kChecksummed, timeout_ms)) {
      throw IoError("shuffle server closed the connection");
    }
    const auto frame = recv_frame(fd, FrameFormat::kChecksummed, timeout_ms);
    if (!frame.has_value()) {
      throw IoError("shuffle server closed before replying");
    }
    WireReader r(*frame);
    const MsgType type = static_cast<MsgType>(r.u8());
    if (type == MsgType::kShuffleError) {
      const ShuffleErrorMsg error = decode_shuffle_error(r);
      if (!error.retryable) {
        TEXTMR_LOG(kWarn) << "shuffle fetch rejected (not retryable): "
                          << error.message;
        ::close(fd);
        return std::nullopt;
      }
      throw IoError("shuffle server error: " + error.message);
    }
    if (type != MsgType::kShuffleData) {
      throw IoError("unexpected shuffle reply type " +
                    std::string(msg_type_name(type)));
    }
    ShuffleDataMsg data = decode_shuffle_data(r);
    const std::uint64_t expected = run.partitions[partition].bytes;
    if (data.bytes.size() != expected) {
      throw IoError("shuffle fetch size mismatch: got " +
                    std::to_string(data.bytes.size()) + " bytes, run footer "
                    "says " + std::to_string(expected));
    }
    result = std::move(data.bytes);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return result;
}

}  // namespace

std::optional<std::string> ShuffleClient::fetch(const Endpoint& source,
                                                const io::SpillRunInfo& run,
                                                std::uint32_t partition) const {
  if (!source.valid() || partition >= run.partitions.size()) {
    return std::nullopt;
  }
  std::uint32_t backoff_ms = options_.backoff_ms;
  for (std::uint32_t attempt = 0; attempt < options_.attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    try {
      return fetch_once(source, run, partition, options_.timeout_ms);
    } catch (const std::exception& e) {
      TEXTMR_LOG(kWarn) << "shuffle fetch " << run.path << "#" << partition
                        << " from " << source.to_string() << " attempt "
                        << (attempt + 1) << "/" << options_.attempts
                        << " failed: " << e.what();
    }
  }
  return std::nullopt;
}

}  // namespace textmr::cluster
