#pragma once

/// Reducer-side shuffle fetcher (DESIGN.md §14).
///
/// fetch() dials the owning worker's ShuffleServer, asks for one
/// (run, partition) and returns the partition's raw frame bytes —
/// exactly what SpillRunReader::read_partition would have produced
/// locally, so the reduce path indexes them identically.
///
/// Failure handling: every network problem (refused connect, timeout,
/// dropped connection, checksum mismatch, retryable server error) burns
/// one attempt; attempts are separated by exponential backoff. After
/// the last attempt fetch() returns nullopt and the caller falls back
/// to the shared-filesystem read (DESIGN.md §14 explains why the
/// fallback must exist: speculation SIGKILLs workers that own committed
/// map output). Non-retryable server errors (bad path, bad partition)
/// fail fast — retrying a malformed request cannot help.

#include <cstdint>
#include <optional>
#include <string>

#include "cluster/transport.hpp"
#include "io/spill_file.hpp"

namespace textmr::cluster {

class ShuffleClient {
 public:
  struct Options {
    std::uint32_t attempts = 3;
    std::uint32_t backoff_ms = 10;      // doubled per retry
    std::int32_t timeout_ms = 5000;     // per-attempt connect + I/O budget
  };

  ShuffleClient() = default;
  explicit ShuffleClient(Options options) : options_(options) {}

  /// Fetches one partition of `run` from `source`. Returns the raw
  /// frame bytes, or nullopt when every attempt failed (caller falls
  /// back to the local read). Validates the byte count against the
  /// run's footer so a truncated reply never reaches the reducer.
  std::optional<std::string> fetch(const Endpoint& source,
                                   const io::SpillRunInfo& run,
                                   std::uint32_t partition) const;

 private:
  Options options_;
};

}  // namespace textmr::cluster
