#pragma once

#include <cstdint>

#include "mr/job.hpp"

namespace textmr::cluster {

/// One worker process's view of the cluster: the control-channel fd to
/// the coordinator and its stable worker (node) id. The JobSpec is
/// inherited through fork — the engine runs workers as forked clones of
/// the coordinator process, which is what lets JobSpec carry arbitrary
/// std::function factories without a serialization story (DESIGN.md §10).
struct WorkerContext {
  int fd = -1;
  std::uint32_t worker_id = 0;
  std::uint32_t heartbeat_interval_ms = 25;
};

/// Worker main loop: sends heartbeats from a side thread, executes
/// map/reduce tasks the coordinator dispatches, reports results or
/// per-attempt failures, uploads its trace on shutdown. Returns the
/// process exit code; never throws (a broken channel means the
/// coordinator died, and the worker just exits). The caller must
/// `_exit()` with the returned code — a forked child must not run the
/// parent's atexit/static-destructor chain.
int worker_main(const WorkerContext& ctx, const mr::JobSpec& spec);

}  // namespace textmr::cluster
