#pragma once

#include <cstdint>
#include <string>

#include "cluster/protocol.hpp"
#include "mr/job.hpp"

namespace textmr::cluster {

/// One worker process's view of the cluster: the control-channel fd to
/// the coordinator and its stable worker (node) id. The JobSpec is
/// inherited through fork — the engine runs workers as forked clones of
/// the coordinator process, which is what lets JobSpec carry arbitrary
/// std::function factories without a serialization story (DESIGN.md §10).
/// Externally-started workers (`textmr_cli worker --connect`) get the
/// same context from run_remote_worker after the welcome handshake.
struct WorkerContext {
  int fd = -1;
  std::uint32_t worker_id = 0;
  std::uint32_t heartbeat_interval_ms = 25;
  /// Wire format of the control channel (transport-determined: legacy
  /// frames over socketpair, checksummed frames over TCP).
  FrameFormat frame_format = FrameFormat::kLegacy;
  /// When true the worker starts a ShuffleServer over its scratch dir
  /// and advertises the endpoint with kHello; reducers then pull map
  /// output over the network (DESIGN.md §14).
  bool shuffle_enabled = false;
  std::string shuffle_host = "127.0.0.1";
  /// Per-frame send/recv budget on the control channel; -1 = no limit
  /// (the socketpair default — the peer is a local process).
  std::int32_t io_timeout_ms = -1;
  /// Max silence between coordinator frames while idle before the
  /// worker concludes the coordinator is dead and exits; 0 = wait
  /// forever.
  std::uint32_t idle_timeout_ms = 0;
};

/// Worker main loop: sends heartbeats from a side thread, executes
/// map/reduce tasks the coordinator dispatches, reports results or
/// per-attempt failures, uploads its trace on shutdown. Returns the
/// process exit code; never throws (a broken channel means the
/// coordinator died, and the worker just exits). A forked caller must
/// `_exit()` with the returned code — a forked child must not run the
/// parent's atexit/static-destructor chain.
int worker_main(const WorkerContext& ctx, const mr::JobSpec& spec);

/// Options for an externally-started worker process.
struct RemoteWorkerOptions {
  std::string shuffle_host = "127.0.0.1";
  std::int32_t connect_timeout_ms = 10000;
  std::int32_t io_timeout_ms = 10000;
  std::uint32_t idle_timeout_ms = 0;
};

/// Dials the coordinator, performs the kWelcome handshake (which
/// assigns the worker id), then runs worker_main over the TCP channel
/// with the shuffle server enabled. Returns worker_main's exit code;
/// throws IoError/FormatError if the handshake itself fails.
int run_remote_worker(const Endpoint& coordinator, const mr::JobSpec& spec,
                      const RemoteWorkerOptions& options = {});

}  // namespace textmr::cluster
