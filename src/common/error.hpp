#pragma once

#include <stdexcept>
#include <string>

namespace textmr {

/// Base class for all errors thrown by the textmr library.
///
/// The library follows the C++ Core Guidelines convention of using
/// exceptions for error handling: failures that a caller cannot reasonably
/// recover from locally (I/O failures, configuration errors, invariant
/// violations) throw subclasses of `Error`.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an on-disk or in-memory record stream is malformed.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error("format error: " + what) {}
};

/// Thrown on filesystem / OS-level I/O failures.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// Thrown when a JobSpec or component configuration is invalid.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Thrown by LocalEngine when a task still fails after exhausting
/// JobSpec::max_task_attempts; carries the task identity, the attempt
/// count, and the last attempt's underlying error message.
class TaskFailedError : public Error {
 public:
  explicit TaskFailedError(const std::string& what)
      : Error("task failed: " + what) {}
};

/// Internal invariant violation; indicates a bug in textmr itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error("internal error: " + what) {}
};

#define TEXTMR_CHECK(cond, msg)                       \
  do {                                                \
    if (!(cond)) {                                    \
      throw ::textmr::InternalError(                  \
          std::string(__FILE__) + ":" +               \
          std::to_string(__LINE__) + ": " + (msg));   \
    }                                                 \
  } while (0)

}  // namespace textmr
