#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace textmr::failpoint {

/// Deterministic fault-injection registry (DESIGN.md §6).
///
/// A *site* is a named place in the runtime (`"spill.write"`,
/// `"dfs.open"`, ...) that asks the registry, on every pass, whether a
/// fault should fire. Sites are armed programmatically (`arm`) or from a
/// spec string (`arm_from_spec`, also reachable via the CLI
/// `--failpoints` flag and the `TEXTMR_FAILPOINTS` environment variable).
/// Disarmed cost: the registry keeps a process-wide armed-site count in
/// one atomic; every hook compiles to a single relaxed load + compare
/// against zero (mirroring the obs layer's null-pointer gating), with no
/// allocation and no lock taken.
///
/// Triggers are deterministic: `nth=N` fires on exactly the Nth hit of
/// the site (1-based, once); `p=F` draws from a per-site xoshiro stream
/// seeded by `seed`, so a fixed seed yields a fixed firing pattern for a
/// fixed hit sequence; neither → every hit fires. `times=N` caps total
/// firings (0 = unlimited; `nth` implies 1).

/// What a fired site should do. Sites that own a byte buffer honor all
/// four kinds; plain check-style sites treat kShortWrite/kCorrupt as
/// kThrow (the fault still surfaces as an I/O error).
enum class ActionKind : std::uint8_t { kThrow, kShortWrite, kCorrupt, kDelay };

struct Action {
  ActionKind kind = ActionKind::kThrow;
  std::uint64_t delay_ms = 0;  // kDelay only

  friend bool operator==(const Action&, const Action&) = default;
};

/// Trigger + action configuration for one armed site.
struct Config {
  std::uint64_t nth = 0;     // fire on exactly the nth hit (1-based); 0 = off
  double probability = 0.0;  // fire each hit with this probability; 0 = off
  std::uint64_t seed = 0;    // seeds the probability stream
  std::uint64_t times = 0;   // max firings; 0 = unlimited (nth implies 1)
  Action action;

  friend bool operator==(const Config&, const Config&) = default;
};

/// Thrown by a fired site with ActionKind::kThrow (and by check-style
/// sites for kShortWrite/kCorrupt). Derives from IoError so the runtime
/// treats an injected fault exactly like a real transient I/O failure.
class InjectedFault : public IoError {
 public:
  explicit InjectedFault(const std::string& site)
      : IoError("injected fault at failpoint '" + site + "'") {}
};

namespace detail {
extern std::atomic<std::uint32_t> g_armed_sites;
}  // namespace detail

/// True when at least one site is armed. This is the whole disarmed-path
/// cost: one relaxed atomic load.
inline bool enabled() {
  return detail::g_armed_sites.load(std::memory_order_relaxed) != 0;
}

/// Arms `site` with `config`; re-arming replaces the previous config and
/// resets the hit/fire counters.
void arm(std::string site, Config config);

/// Disarms one site / all sites.
void disarm(std::string_view site);
void disarm_all();

/// Records a hit at `site` and returns the action to perform if the site
/// fired, nullopt otherwise (including when the site is not armed). Only
/// call behind `enabled()`.
std::optional<Action> consume(std::string_view site);

/// Check-style evaluation: fires -> kDelay sleeps, everything else
/// throws InjectedFault. The TEXTMR_FAILPOINT macro wraps this behind
/// `enabled()`.
void check(std::string_view site);

/// Sleeps for a kDelay action; no-op for other kinds.
void maybe_delay(const Action& action);

/// Observability for tests: hits seen / faults fired since arming.
std::uint64_t hit_count(std::string_view site);
std::uint64_t fire_count(std::string_view site);

// ---- spec grammar ---------------------------------------------------------
//
//   spec    := entry (',' entry)*
//   entry   := site (sep param)*
//   sep     := ':' | '@'
//   param   := 'nth=' N | 'p=' F | 'seed=' N | 'times=' N
//            | 'delay_ms=' N | 'always'
//            | 'action=' ('throw'|'shortwrite'|'corrupt'|'delay')
//
// Examples: "spill.write:nth=3", "dfs.open:p=0.01@seed=42",
//           "support.sort:always:action=delay:delay_ms=5".

/// Parses a spec string. Throws ConfigError on malformed input.
std::vector<std::pair<std::string, Config>> parse_spec(std::string_view spec);

/// Parses and arms every entry of `spec`.
void arm_from_spec(std::string_view spec);

/// Canonical spec string for the currently armed sites (sorted by site
/// name); parse_spec(format_spec()) round-trips to the same configs.
std::string format_spec();

/// Arms from the TEXTMR_FAILPOINTS environment variable, if set.
void arm_from_env();

/// RAII helper: disarms every site on destruction (tests).
class ScopedFailpoints {
 public:
  ScopedFailpoints() = default;
  explicit ScopedFailpoints(std::string_view spec) { arm_from_spec(spec); }
  ~ScopedFailpoints() { disarm_all(); }
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;
};

}  // namespace textmr::failpoint

/// Check-style site: no-op (one relaxed load) unless some site is armed.
#define TEXTMR_FAILPOINT(site)                  \
  do {                                          \
    if (::textmr::failpoint::enabled()) {       \
      ::textmr::failpoint::check(site);         \
    }                                           \
  } while (0)
