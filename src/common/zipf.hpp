#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace textmr {

/// Zipf(alpha) sampler over ranks {1, ..., n}:  P(rank = i) ∝ i^-alpha.
///
/// Implements Hörmann & Derflinger's rejection-inversion method, which has
/// O(1) setup-independent sampling cost and supports n up to 2^62 — needed
/// because the paper's corpora have vocabularies in the tens of millions
/// and URL universes in the hundreds of thousands.
///
/// alpha == 0 degenerates to the uniform distribution over ranks.
class ZipfDistribution {
 public:
  ZipfDistribution(std::uint64_t n, double alpha);

  std::uint64_t n() const noexcept { return n_; }
  double alpha() const noexcept { return alpha_; }

  /// Draw one rank in [1, n].
  std::uint64_t operator()(Xoshiro256& rng) const;

  /// Exact probability of a rank (for tests; O(1) using cached H_{n,alpha}).
  double pmf(std::uint64_t rank) const;

 private:
  double h(double x) const;
  double h_integral(double x) const;
  double h_integral_inverse(double u) const;

  std::uint64_t n_;
  double alpha_;
  double h_integral_x1_;   // H(1.5) shifted
  double h_integral_num_;  // H(n + 0.5)
  double s_;
  double harmonic_;        // H_{n,alpha} for pmf()
};

}  // namespace textmr
