#pragma once

#include <cstdint>
#include <limits>

namespace textmr {

/// splitmix64: used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, and deterministic across
/// platforms, unlike std::mt19937_64's distributions. All generators in
/// textmr::textgen use this so that datasets are bit-reproducible.
///
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{0, 0, 0, 0} {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (unbiased
  /// enough for data generation; bound must be > 0).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace textmr
