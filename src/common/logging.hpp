#pragma once

#include <atomic>
#include <sstream>
#include <string>

#include "common/mutex.hpp"

namespace textmr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal thread-safe leveled logger writing to stderr.
///
/// The runtime is instrumented heavily; logging is off by default in tests
/// and benchmarks so that measured abstraction costs are not polluted by
/// logging I/O. Control globally with `set_log_level`.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  // Atomic, not guarded: the level is checked on every TEXTMR_LOG site,
  // possibly while the caller holds other locks, and set_level() may race
  // with concurrent logging (tests flip it around threaded runs).
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  // Serializes stderr so concurrent log lines never interleave. kLogging
  // is the innermost rank band: logging is legal under any other lock.
  Mutex mu_{LockRank::kLogging, "logging.stderr"};
};

void set_log_level(LogLevel level);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

#define TEXTMR_LOG(level) \
  ::textmr::detail::LogLine(::textmr::LogLevel::level, __FILE__, __LINE__)

}  // namespace textmr
