#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace textmr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal thread-safe leveled logger writing to stderr.
///
/// The runtime is instrumented heavily; logging is off by default in tests
/// and benchmarks so that measured abstraction costs are not polluted by
/// logging I/O. Control globally with `set_log_level`.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const { return level_; }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

void set_log_level(LogLevel level);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

#define TEXTMR_LOG(level) \
  ::textmr::detail::LogLine(::textmr::LogLevel::level, __FILE__, __LINE__)

}  // namespace textmr
