#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace textmr {

/// LEB128-style varint encoding, the record framing used by the spill-run
/// file format and by typed app values. Varints keep intermediate data
/// compact, which is exactly the kind of serialization cost the paper's
/// Table I "emit" operation accounts for.
inline void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

/// Decode a varint starting at `pos` in `in`; advances `pos` past it.
inline std::uint64_t get_varint(std::string_view in, std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (pos >= in.size()) throw FormatError("truncated varint");
    if (shift >= 64) throw FormatError("varint overflow");
    const auto byte = static_cast<std::uint8_t>(in[pos++]);
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

/// ZigZag for signed values (PageRank deltas etc.).
constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void put_varint_signed(std::string& out, std::int64_t value) {
  put_varint(out, zigzag_encode(value));
}

inline std::int64_t get_varint_signed(std::string_view in, std::size_t& pos) {
  return zigzag_decode(get_varint(in, pos));
}

/// Fixed-width little-endian u32/u64 and IEEE double, for formats where
/// random access matters more than size.
inline void put_fixed32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(value >> (8 * i)));
}

inline std::uint32_t get_fixed32(std::string_view in, std::size_t& pos) {
  if (pos + 4 > in.size()) throw FormatError("truncated fixed32");
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[pos + i]))
             << (8 * i);
  }
  pos += 4;
  return value;
}

inline void put_fixed64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(value >> (8 * i)));
}

inline std::uint64_t get_fixed64(std::string_view in, std::size_t& pos) {
  if (pos + 8 > in.size()) throw FormatError("truncated fixed64");
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in[pos + i]))
             << (8 * i);
  }
  pos += 8;
  return value;
}

inline void put_double(std::string& out, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  put_fixed64(out, bits);
}

inline double get_double(std::string_view in, std::size_t& pos) {
  const std::uint64_t bits = get_fixed64(in, pos);
  double value;
  __builtin_memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Length-prefixed byte string.
inline void put_length_prefixed(std::string& out, std::string_view bytes) {
  put_varint(out, bytes.size());
  out.append(bytes.data(), bytes.size());
}

inline std::string_view get_length_prefixed(std::string_view in,
                                            std::size_t& pos) {
  const std::uint64_t len = get_varint(in, pos);
  if (pos + len > in.size()) throw FormatError("truncated length-prefixed bytes");
  std::string_view view = in.substr(pos, len);
  pos += len;
  return view;
}

}  // namespace textmr
