#pragma once

#include <cstdint>
#include <string_view>

namespace textmr {

/// 64-bit FNV-1a over a byte string. Deterministic across platforms, which
/// matters for the hash Partitioner: a job's partition assignment (and hence
/// its output layout) must be reproducible run to run.
constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Finalizer from splitmix64; used to decorrelate fnv1a output bits before
/// taking a modulus (fnv1a's low bits are weak for short keys).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash_key(std::string_view key) noexcept {
  return mix64(fnv1a64(key));
}

}  // namespace textmr
