#include "common/logging.hpp"

#include <cstdio>
#include <cstring>

namespace textmr {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  level_.store(level, std::memory_order_relaxed);
}

void Logger::write(LogLevel level, const std::string& message) {
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  MutexLock lock(mu_);
  std::fprintf(stderr, "[textmr %s] %s\n",
               kNames[static_cast<int>(level)], message.c_str());
}

void set_log_level(LogLevel level) { Logger::instance().set_level(level); }

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(level >= Logger::instance().level() && level != LogLevel::kOff) {
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    stream_ << (base ? base + 1 : file) << ":" << line << " ";
  }
}

LogLine::~LogLine() {
  if (enabled_) Logger::instance().write(level_, stream_.str());
}

}  // namespace detail
}  // namespace textmr
