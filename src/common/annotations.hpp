#pragma once

/// General (non-thread-safety) compiler annotations; the lock-capability
/// family lives in thread_annotations.hpp.

/// `[[clang::lifetimebound]]` on a parameter (including the implicit
/// `this`, by placing the macro after a member function's parameter
/// list) tells Clang that the returned value borrows from that
/// argument, so binding the result to something that outlives the
/// owner is diagnosed at compile time (-Werror=dangling-gsl /
/// -Wdangling). This is the compiler-enforced half of the zero-copy
/// record path's lifetime contract (DESIGN.md §8, §13): accessors that
/// return `std::string_view` / `RecordRef` spans into an arena, ring,
/// or decoded frame must carry it. GCC and other compilers see an
/// empty expansion, so the annotated tree stays portable.
///
/// tests/compile_fail has WILL_FAIL targets proving the attribute
/// rejects returning a view tied to a dead owner; textmr-check's
/// view-escape rule covers the patterns the attribute cannot see.
#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::lifetimebound)
#define TEXTMR_LIFETIME_BOUND [[clang::lifetimebound]]
#endif
#endif
#ifndef TEXTMR_LIFETIME_BOUND
#define TEXTMR_LIFETIME_BOUND
#endif
