#pragma once

#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace textmr {

/// Generalized harmonic number H_{m,alpha} = sum_{j=1..m} j^{-alpha}.
///
/// Used by the auto-tuning profiler (paper §III-C) to pick the sampling
/// fraction s from  n*s >= k^alpha * H_{m,alpha}.  For large m the direct
/// sum is replaced by an Euler–Maclaurin tail approximation so the profiler
/// can evaluate it for vocabulary sizes in the tens of millions at
/// negligible cost.
inline double generalized_harmonic(std::uint64_t m, double alpha) {
  TEXTMR_CHECK(m >= 1, "harmonic number needs m >= 1");
  // Exact summation for the head; it dominates the value for alpha ~ 1.
  constexpr std::uint64_t kExactTerms = 100000;
  const std::uint64_t head = (m < kExactTerms) ? m : kExactTerms;
  double sum = 0.0;
  for (std::uint64_t j = 1; j <= head; ++j) {
    sum += std::pow(static_cast<double>(j), -alpha);
  }
  if (head == m) return sum;

  // Euler–Maclaurin for the tail sum_{j=head+1..m} j^-alpha:
  //   integral_{head}^{m} x^-alpha dx
  //   + (m^-alpha - head^-alpha)/2 + alpha*(head^-(alpha+1) - m^-(alpha+1))/12
  const double a = static_cast<double>(head);
  const double b = static_cast<double>(m);
  double integral;
  if (std::fabs(alpha - 1.0) < 1e-12) {
    integral = std::log(b) - std::log(a);
  } else {
    integral = (std::pow(b, 1.0 - alpha) - std::pow(a, 1.0 - alpha)) / (1.0 - alpha);
  }
  const double trapezoid = 0.5 * (std::pow(b, -alpha) - std::pow(a, -alpha));
  const double bernoulli =
      alpha / 12.0 * (std::pow(a, -alpha - 1.0) - std::pow(b, -alpha - 1.0));
  return sum + integral + trapezoid + bernoulli;
}

}  // namespace textmr
