#include "common/clock.hpp"

namespace textmr::common {

const Clock& system_clock() {
  static const SystemClock clock;
  return clock;
}

}  // namespace textmr::common
