#include "common/zipf.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/harmonic.hpp"

namespace textmr {
namespace {

/// helper(x) = (exp(x) - 1) / x, numerically stable near 0.
double expm1_over_x(double x) {
  if (std::fabs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x / 2.0 * (1.0 + x / 3.0);
}

/// helper(x) = log1p(x) / x, numerically stable near 0.
double log1p_over_x(double x) {
  if (std::fabs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x / 2.0 + x * x / 3.0;
}

}  // namespace

ZipfDistribution::ZipfDistribution(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  TEXTMR_CHECK(n >= 1, "Zipf needs n >= 1");
  TEXTMR_CHECK(alpha >= 0.0, "Zipf needs alpha >= 0");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_num_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  harmonic_ = generalized_harmonic(n, alpha);
}

double ZipfDistribution::h(double x) const {
  return std::exp(-alpha_ * std::log(x));  // x^-alpha
}

// H(x) = integral of h, chosen with H(1) such that the rejection-inversion
// identities hold: for alpha != 1, H(x) = (x^(1-alpha) - 1)/(1-alpha);
// for alpha == 1, H(x) = log(x). Written via the stable helpers so the
// alpha -> 1 limit is continuous.
double ZipfDistribution::h_integral(double x) const {
  const double log_x = std::log(x);
  return expm1_over_x((1.0 - alpha_) * log_x) * log_x;
}

double ZipfDistribution::h_integral_inverse(double u) const {
  double t = u * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // guard against rounding below the pole
  return std::exp(log1p_over_x(t) * u);
}

std::uint64_t ZipfDistribution::operator()(Xoshiro256& rng) const {
  // Hörmann & Derflinger (1996), "Rejection-inversion to generate variates
  // from monotone discrete distributions".
  while (true) {
    const double u =
        h_integral_num_ + rng.next_double() * (h_integral_x1_ - h_integral_num_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

double ZipfDistribution::pmf(std::uint64_t rank) const {
  TEXTMR_CHECK(rank >= 1 && rank <= n_, "rank out of range");
  return std::pow(static_cast<double>(rank), -alpha_) / harmonic_;
}

}  // namespace textmr
