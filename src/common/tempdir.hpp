#pragma once

#include <filesystem>
#include <string>

namespace textmr {

/// RAII temporary directory; removed (recursively) on destruction.
/// Used by tests, examples and the SimDfs default scratch space.
class TempDir {
 public:
  /// Creates a fresh unique directory under the system temp path,
  /// prefixed with `prefix`.
  explicit TempDir(const std::string& prefix = "textmr");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;

  const std::filesystem::path& path() const { return path_; }

  /// Path of a file or subdirectory inside this directory.
  std::filesystem::path file(const std::string& name) const {
    return path_ / name;
  }

 private:
  std::filesystem::path path_;
};

}  // namespace textmr
