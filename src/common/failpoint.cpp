#include "common/failpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>

#include "common/mutex.hpp"
#include "common/rng.hpp"

namespace textmr::failpoint {

namespace detail {
std::atomic<std::uint32_t> g_armed_sites{0};
}  // namespace detail

namespace {

struct SiteState {
  Config config;
  Xoshiro256 rng{0};
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

struct Registry {
  Mutex mu{LockRank::kFailpoint, "failpoint.registry"};
  // std::less<> for string_view lookups without temporary strings.
  std::map<std::string, SiteState, std::less<>> sites TEXTMR_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* instance = new Registry;  // leaked: safe at exit
  return *instance;
}

const char* action_name(ActionKind kind) {
  switch (kind) {
    case ActionKind::kThrow: return "throw";
    case ActionKind::kShortWrite: return "shortwrite";
    case ActionKind::kCorrupt: return "corrupt";
    case ActionKind::kDelay: return "delay";
  }
  return "throw";
}

std::uint64_t parse_u64(std::string_view entry, std::string_view value) {
  char* end = nullptr;
  const std::string copy(value);
  const std::uint64_t parsed = std::strtoull(copy.c_str(), &end, 10);
  if (end == copy.c_str() || *end != '\0') {
    throw ConfigError("failpoint spec: bad integer '" + copy + "' in '" +
                      std::string(entry) + "'");
  }
  return parsed;
}

double parse_f64(std::string_view entry, std::string_view value) {
  char* end = nullptr;
  const std::string copy(value);
  const double parsed = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0' || parsed < 0.0 || parsed > 1.0) {
    throw ConfigError("failpoint spec: bad probability '" + copy + "' in '" +
                      std::string(entry) + "'");
  }
  return parsed;
}

void apply_param(Config& config, std::string_view entry,
                 std::string_view param) {
  if (param == "always") return;  // default trigger: every hit
  const auto eq = param.find('=');
  if (eq == std::string_view::npos) {
    throw ConfigError("failpoint spec: expected key=value, got '" +
                      std::string(param) + "' in '" + std::string(entry) +
                      "'");
  }
  const std::string_view key = param.substr(0, eq);
  const std::string_view value = param.substr(eq + 1);
  if (key == "nth") {
    config.nth = parse_u64(entry, value);
    if (config.nth == 0) {
      throw ConfigError("failpoint spec: nth is 1-based, got 0 in '" +
                        std::string(entry) + "'");
    }
  } else if (key == "p") {
    config.probability = parse_f64(entry, value);
  } else if (key == "seed") {
    config.seed = parse_u64(entry, value);
  } else if (key == "times") {
    config.times = parse_u64(entry, value);
  } else if (key == "delay_ms") {
    config.action.delay_ms = parse_u64(entry, value);
  } else if (key == "action") {
    if (value == "throw") {
      config.action.kind = ActionKind::kThrow;
    } else if (value == "shortwrite") {
      config.action.kind = ActionKind::kShortWrite;
    } else if (value == "corrupt") {
      config.action.kind = ActionKind::kCorrupt;
    } else if (value == "delay") {
      config.action.kind = ActionKind::kDelay;
    } else {
      throw ConfigError("failpoint spec: unknown action '" +
                        std::string(value) + "' in '" + std::string(entry) +
                        "'");
    }
  } else {
    throw ConfigError("failpoint spec: unknown key '" + std::string(key) +
                      "' in '" + std::string(entry) + "'");
  }
}

}  // namespace

void arm(std::string site, Config config) {
  if (site.empty()) throw ConfigError("failpoint site name is empty");
  if (config.nth > 0 && config.probability > 0.0) {
    throw ConfigError("failpoint '" + site +
                      "': nth and p triggers are mutually exclusive");
  }
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  const auto [it, inserted] = reg.sites.try_emplace(std::move(site));
  if (inserted) {
    detail::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
  }
  it->second = SiteState{};
  it->second.config = config;
  it->second.rng = Xoshiro256(config.seed);
}

void disarm(std::string_view site) {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  const auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return;
  reg.sites.erase(it);
  detail::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  detail::g_armed_sites.fetch_sub(
      static_cast<std::uint32_t>(reg.sites.size()),
      std::memory_order_relaxed);
  reg.sites.clear();
}

std::optional<Action> consume(std::string_view site) {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  const auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return std::nullopt;
  SiteState& state = it->second;
  state.hits += 1;

  bool fire;
  if (state.config.nth > 0) {
    fire = state.hits == state.config.nth;
  } else if (state.config.probability > 0.0) {
    fire = state.rng.next_double() < state.config.probability;
  } else {
    fire = true;  // "always"
  }
  if (fire && state.config.times > 0 && state.fires >= state.config.times) {
    fire = false;
  }
  if (!fire) return std::nullopt;
  state.fires += 1;
  return state.config.action;
}

void maybe_delay(const Action& action) {
  if (action.kind != ActionKind::kDelay) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
}

void check(std::string_view site) {
  const auto action = consume(site);
  if (!action.has_value()) return;
  if (action->kind == ActionKind::kDelay) {
    maybe_delay(*action);
    return;
  }
  throw InjectedFault(std::string(site));
}

std::uint64_t hit_count(std::string_view site) {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  const auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

std::uint64_t fire_count(std::string_view site) {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  const auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fires;
}

std::vector<std::pair<std::string, Config>> parse_spec(std::string_view spec) {
  std::vector<std::pair<std::string, Config>> entries;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) {
      if (spec.empty()) break;
      throw ConfigError("failpoint spec: empty entry in '" +
                        std::string(spec) + "'");
    }
    // Site name runs to the first ':' or '@'; params follow, separated by
    // either character.
    const std::size_t site_end = entry.find_first_of(":@");
    const std::string site(entry.substr(0, site_end));
    if (site.empty()) {
      throw ConfigError("failpoint spec: missing site name in '" +
                        std::string(entry) + "'");
    }
    Config config;
    std::size_t p = site_end;
    while (p != std::string_view::npos && p < entry.size()) {
      const std::size_t param_start = p + 1;
      p = entry.find_first_of(":@", param_start);
      const std::string_view param =
          entry.substr(param_start, (p == std::string_view::npos
                                         ? entry.size()
                                         : p) -
                                        param_start);
      if (param.empty()) {
        throw ConfigError("failpoint spec: empty parameter in '" +
                          std::string(entry) + "'");
      }
      apply_param(config, entry, param);
    }
    if (config.nth > 0 && config.probability > 0.0) {
      throw ConfigError("failpoint spec: nth and p are mutually exclusive "
                        "in '" + std::string(entry) + "'");
    }
    entries.emplace_back(site, config);
  }
  return entries;
}

void arm_from_spec(std::string_view spec) {
  for (auto& [site, config] : parse_spec(spec)) {
    arm(std::move(site), config);
  }
}

std::string format_spec() {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  std::string out;
  for (const auto& [site, state] : reg.sites) {  // std::map: sorted
    if (!out.empty()) out.push_back(',');
    out += site;
    const Config& c = state.config;
    if (c.nth > 0) {
      out += ":nth=" + std::to_string(c.nth);
    } else if (c.probability > 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ":p=%.17g", c.probability);
      out += buf;
    } else {
      out += ":always";
    }
    if (c.seed != 0) out += ":seed=" + std::to_string(c.seed);
    if (c.times != 0) out += ":times=" + std::to_string(c.times);
    if (c.action.kind != ActionKind::kThrow) {
      out += ":action=";
      out += action_name(c.action.kind);
    }
    if (c.action.delay_ms != 0) {
      out += ":delay_ms=" + std::to_string(c.action.delay_ms);
    }
  }
  return out;
}

void arm_from_env() {
  const char* spec = std::getenv("TEXTMR_FAILPOINTS");
  if (spec != nullptr && spec[0] != '\0') arm_from_spec(spec);
}

}  // namespace textmr::failpoint
