#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace textmr {

/// Global lock hierarchy (DESIGN.md §7). A thread may only acquire a
/// mutex whose rank is STRICTLY GREATER than every mutex it already
/// holds, so low ranks are outer/coarse locks and high ranks are leaf
/// locks that may be taken while anything else is held. Each subsystem
/// owns one band (step 100) leaving room for intermediate ranks as the
/// engine grows (more workers, sharding, multi-support threads).
///
/// The debug lock-rank checker (TEXTMR_LOCK_RANK_CHECKS) enforces this
/// at runtime on every acquisition and aborts deterministically on the
/// first inversion — no lucky interleaving required.
enum class LockRank : std::uint32_t {
  kEngine = 100,       // mr/engine: retry scheduler error state
  kCluster = 150,      // cluster: worker control-channel writer state
  kMapTask = 200,      // mr/map_task: support-thread shared results
  kFreqBuf = 300,      // freqbuf: per-node frozen frequent-key cache
  kSpillBuffer = 400,  // mr/spill_buffer: circular ring + spill queue
  kTempDir = 500,      // common/tempdir: reserved (currently lock-free)
  kFailpoint = 600,    // common/failpoint: fault-injection registry
  kTrace = 700,        // obs: trace-collector ring registry
  kLogging = 800,      // common/logging: stderr sink (innermost leaf)
};

/// Human-readable name of a rank band; "unknown" for unregistered values.
const char* lock_rank_name(LockRank rank);

/// Annotated mutex capability. Every mutex in the tree carries a fixed
/// LockRank and a stable name (string literal) used in lock-rank abort
/// reports; construction/destruction also maintains the debug registry
/// behind lock_rank_registry().
class TEXTMR_CAPABILITY("mutex") Mutex {
 public:
  Mutex(LockRank rank, const char* name);
  ~Mutex();

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TEXTMR_ACQUIRE();
  void unlock() TEXTMR_RELEASE();

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// RAII lock scope (the only sanctioned way to hold a Mutex).
class TEXTMR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TEXTMR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TEXTMR_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with textmr::Mutex. wait() releases and
/// re-acquires through Mutex::lock/unlock, so the lock-rank checker's
/// per-thread held stack stays consistent across the wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) TEXTMR_REQUIRES(mu) { cv_.wait(mu); }

  /// Timed wait; returns false on timeout. Used by periodic loops (the
  /// cluster worker's heartbeat thread) that must also wake promptly on
  /// shutdown.
  template <typename Rep, typename Period>
  bool wait_for(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      TEXTMR_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

// ---- lock-rank checker introspection (tests) ------------------------------

struct MutexInfo {
  std::string name;
  LockRank rank;
};

/// Live mutexes, in construction order. Empty when the checker is
/// compiled out (TEXTMR_LOCK_RANK_CHECKS=0).
std::vector<MutexInfo> lock_rank_registry();

///// Number of textmr::Mutex locks the calling thread currently holds
/// (always 0 when the checker is compiled out).
std::size_t held_lock_count();

}  // namespace textmr
