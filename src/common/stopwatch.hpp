#pragma once

#include <chrono>
#include <cstdint>

namespace textmr {

/// Monotonic nanosecond clock used by all instrumentation.
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simple accumulate-able stopwatch.
class Stopwatch {
 public:
  void start() { start_ns_ = monotonic_ns(); }

  /// Stops and adds the elapsed interval to the accumulated total.
  void stop() { total_ns_ += monotonic_ns() - start_ns_; }

  std::uint64_t total_ns() const { return total_ns_; }
  double total_seconds() const { return static_cast<double>(total_ns_) * 1e-9; }

  void reset() { total_ns_ = 0; }

 private:
  std::uint64_t start_ns_ = 0;
  std::uint64_t total_ns_ = 0;
};

}  // namespace textmr
