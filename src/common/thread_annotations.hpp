#pragma once

/// Clang thread-safety-analysis annotations (DESIGN.md §7).
///
/// Under Clang with `-Wthread-safety` (the TEXTMR_THREAD_SAFETY CMake
/// option turns it into `-Werror=thread-safety`) these macros expand to
/// the `capability`-family attributes, letting the compiler prove at
/// build time that every access to a `TEXTMR_GUARDED_BY(mu)` field
/// happens with `mu` held and that `TEXTMR_REQUIRES(mu)` functions are
/// only called under the right lock. Under every other compiler they
/// expand to nothing, so the annotated tree stays portable.
///
/// Use `textmr::Mutex` / `textmr::MutexLock` (common/mutex.hpp) as the
/// annotated capability; raw `std::mutex` outside that wrapper is
/// rejected by `tools/lint.py`.

#if defined(__clang__) && !defined(SWIG)
#define TEXTMR_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define TEXTMR_THREAD_ANNOTATION_(x)
#endif

/// Marks a class as a lockable capability; `x` is the capability kind
/// shown in diagnostics (normally "mutex").
#define TEXTMR_CAPABILITY(x) TEXTMR_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define TEXTMR_SCOPED_CAPABILITY TEXTMR_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define TEXTMR_GUARDED_BY(x) TEXTMR_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define TEXTMR_PT_GUARDED_BY(x) TEXTMR_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that may only be called with the capabilities already held.
#define TEXTMR_REQUIRES(...) \
  TEXTMR_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that acquires the capabilities and does not release them.
#define TEXTMR_ACQUIRE(...) \
  TEXTMR_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases capabilities acquired earlier.
#define TEXTMR_RELEASE(...) \
  TEXTMR_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns true.
#define TEXTMR_TRY_ACQUIRE(...) \
  TEXTMR_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be called with the capabilities held
/// (deadlock guard for self-locking APIs).
#define TEXTMR_EXCLUDES(...) \
  TEXTMR_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts (without acquiring) that the capability is held.
#define TEXTMR_ASSERT_CAPABILITY(x) \
  TEXTMR_THREAD_ANNOTATION_(assert_capability(x))

/// Function returning a reference to the given capability.
#define TEXTMR_RETURN_CAPABILITY(x) TEXTMR_THREAD_ANNOTATION_(lock_returned(x))

/// Declares the relative acquisition order between capabilities; the
/// authoritative order is the runtime LockRank table in common/mutex.hpp.
#define TEXTMR_ACQUIRED_BEFORE(...) \
  TEXTMR_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define TEXTMR_ACQUIRED_AFTER(...) \
  TEXTMR_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Escape hatch for functions the analysis cannot model. Every use must
/// carry a comment explaining why it is sound.
#define TEXTMR_NO_THREAD_SAFETY_ANALYSIS \
  TEXTMR_THREAD_ANNOTATION_(no_thread_safety_analysis)
