#pragma once

#include <atomic>
#include <cstdint>

#include "common/stopwatch.hpp"

namespace textmr::common {

/// Injectable time source. Components whose behaviour depends on elapsed
/// time (the spill buffer's produce/consume timing that feeds the
/// spill-matcher's eq. (1), the cluster coordinator's heartbeat-timeout /
/// straggler math) take a `const Clock*` instead of calling
/// monotonic_ns() directly, so tests drive them with a ManualClock and
/// assert exact thresholds instead of sleeping.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t now_ns() const = 0;
};

/// The real monotonic clock (CLOCK_MONOTONIC via std::chrono).
class SystemClock final : public Clock {
 public:
  std::uint64_t now_ns() const override { return monotonic_ns(); }
};

/// Process-wide SystemClock instance — the default everywhere a Clock is
/// optional.
const Clock& system_clock();

/// Test clock: time moves only when the test says so. Thread-safe, so a
/// test can advance it while the component under test reads it from
/// another thread.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::uint64_t start_ns = 0) : now_ns_(start_ns) {}

  std::uint64_t now_ns() const override {
    return now_ns_.load(std::memory_order_acquire);
  }

  void advance_ns(std::uint64_t delta_ns) {
    now_ns_.fetch_add(delta_ns, std::memory_order_acq_rel);
  }
  void advance_ms(std::uint64_t delta_ms) { advance_ns(delta_ms * 1000000); }
  void set_ns(std::uint64_t ns) { now_ns_.store(ns, std::memory_order_release); }

 private:
  std::atomic<std::uint64_t> now_ns_;
};

}  // namespace textmr::common
