#include "common/mutex.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace textmr {

const char* lock_rank_name(LockRank rank) {
  switch (rank) {
    case LockRank::kEngine: return "engine";
    case LockRank::kCluster: return "cluster";
    case LockRank::kMapTask: return "map_task";
    case LockRank::kFreqBuf: return "freqbuf";
    case LockRank::kSpillBuffer: return "spill_buffer";
    case LockRank::kTempDir: return "tempdir";
    case LockRank::kFailpoint: return "failpoint";
    case LockRank::kTrace: return "trace";
    case LockRank::kLogging: return "logging";
  }
  return "unknown";
}

#if TEXTMR_LOCK_RANK_CHECKS

namespace {

/// Locks held by the calling thread, in acquisition order. A plain
/// vector: the stack is tiny (the deepest sanctioned chain is
/// map_task -> spill_buffer -> logging) and thread-local, so push/pop
/// cost a few unsynchronized stores — the "near-zero cost" the debug
/// checker promises.
thread_local std::vector<const Mutex*> t_held;

/// Registry of live mutexes for test introspection. Deliberately a raw
/// std::mutex: the registry must not itself participate in rank
/// checking (registration happens inside Mutex construction).
struct Registry {
  std::mutex mu;
  // check:allow(lock-coverage): guarded by the raw `mu` above, which has
  // no capability annotation by design (it must stay outside rank checking).
  std::vector<const Mutex*> live;
};

Registry& registry() {
  static Registry* instance = new Registry;  // leaked: safe at exit
  return *instance;
}

[[noreturn]] void abort_with_held_stack(const char* what, const Mutex& mu) {
  std::fprintf(stderr,
               "textmr: %s: acquiring \"%s\" (rank %u, band %s) while this "
               "thread holds %zu lock(s):\n",
               what, mu.name(), static_cast<unsigned>(mu.rank()),
               lock_rank_name(mu.rank()), t_held.size());
  for (const Mutex* held : t_held) {
    std::fprintf(stderr, "  held: \"%s\" (rank %u, band %s)\n", held->name(),
                 static_cast<unsigned>(held->rank()),
                 lock_rank_name(held->rank()));
  }
  std::fprintf(stderr,
               "textmr: locks must be acquired in strictly increasing rank "
               "order (DESIGN.md section 7)\n");
  std::abort();
}

/// Called BEFORE blocking on the underlying mutex, so an inversion
/// aborts with a report instead of deadlocking.
void check_acquire(const Mutex& mu) {
  std::uint32_t max_held = 0;
  for (const Mutex* held : t_held) {
    if (held == &mu) {
      abort_with_held_stack("lock-rank self-deadlock", mu);
    }
    max_held = std::max(max_held, static_cast<std::uint32_t>(held->rank()));
  }
  if (!t_held.empty() && static_cast<std::uint32_t>(mu.rank()) <= max_held) {
    abort_with_held_stack("lock-rank violation", mu);
  }
}

void note_acquired(const Mutex& mu) { t_held.push_back(&mu); }

void note_released(const Mutex& mu) {
  // Search from the back: releases are almost always LIFO, but CondVar
  // re-acquisition and out-of-order unlock keep this general.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (*it == &mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(stderr,
               "textmr: lock-rank violation: releasing \"%s\" (rank %u) "
               "not held by this thread\n",
               mu.name(), static_cast<unsigned>(mu.rank()));
  std::abort();
}

}  // namespace

Mutex::Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.live.push_back(this);
}

Mutex::~Mutex() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::erase(reg.live, this);
}

void Mutex::lock() {
  check_acquire(*this);
  mu_.lock();
  note_acquired(*this);
}

void Mutex::unlock() {
  note_released(*this);
  mu_.unlock();
}

std::vector<MutexInfo> lock_rank_registry() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<MutexInfo> out;
  out.reserve(reg.live.size());
  for (const Mutex* mu : reg.live) {
    out.push_back(MutexInfo{mu->name(), mu->rank()});
  }
  return out;
}

std::size_t held_lock_count() { return t_held.size(); }

#else  // !TEXTMR_LOCK_RANK_CHECKS

Mutex::Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
Mutex::~Mutex() = default;

void Mutex::lock() { mu_.lock(); }
void Mutex::unlock() { mu_.unlock(); }

std::vector<MutexInfo> lock_rank_registry() { return {}; }
std::size_t held_lock_count() { return 0; }

#endif  // TEXTMR_LOCK_RANK_CHECKS

}  // namespace textmr
