#include "common/tempdir.hpp"

#include <atomic>
#include <random>

#include "common/error.hpp"

namespace textmr {
namespace {

std::atomic<std::uint64_t> g_counter{0};

}  // namespace

TempDir::TempDir(const std::string& prefix) {
  const auto base = std::filesystem::temp_directory_path();
  std::random_device rd;
  for (int attempt = 0; attempt < 100; ++attempt) {
    const auto name = prefix + "-" + std::to_string(rd()) + "-" +
                      std::to_string(g_counter.fetch_add(1));
    const auto candidate = base / name;
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec)) {
      path_ = candidate;
      return;
    }
  }
  throw IoError("could not create temporary directory under " + base.string());
}

TempDir::~TempDir() {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort
  }
}

TempDir::TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) {
  other.path_.clear();
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

}  // namespace textmr
