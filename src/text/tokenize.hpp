#pragma once

// Word-tokenization kernels for the text-centric hot loop (DESIGN.md §15).
//
// One *scalar reference* implementation defines the semantics and stays
// the oracle forever: a token is a maximal run of [A-Za-z0-9] bytes,
// normalized by lowercasing (byte | 0x20 — an identity on digits and
// lowercase letters); every other byte — including NUL and anything with
// the high bit set (multi-byte UTF-8) — is a delimiter. The SWAR and
// SSE2/NEON kernels classify 8/16 bytes per step and must reproduce the
// oracle token-for-token (tests/test_tokenizer_fuzz.cpp enforces this at
// every alignment offset and block-straddling length).
//
// Dispatch is resolved at runtime: kAuto picks the best kernel compiled
// for this target, TEXTMR_TOKENIZE=scalar|swar|simd (or
// set_tokenize_mode / the CLI's --simd-tokenize option) overrides it.
// Because every kernel is oracle-equivalent, processes in one cluster job
// may disagree on the mode without breaking byte-identity.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>

namespace textmr::text {

enum class TokenizeMode : int {
  kAuto = 0,    // best kernel compiled for this target (default)
  kScalar = 1,  // the reference loop (the oracle)
  kSwar = 2,    // 8-byte SWAR classifier
  kSimd = 3,    // 16-byte SSE2/NEON classifier (falls back to SWAR)
};

/// Process-global kernel selection. Reading is a relaxed atomic load on
/// the per-line path; setting is for tests, the CLI and env resolution.
void set_tokenize_mode(TokenizeMode mode);
TokenizeMode tokenize_mode();

/// The mode `kAuto` resolves to on this build/host ("scalar", "swar",
/// "simd-sse2", "simd-neon").
const char* resolved_kernel_name();

/// Parses "scalar" / "swar" / "simd" / "auto"; returns false on anything
/// else. Shared by the CLI flag and the TEXTMR_TOKENIZE env knob.
bool parse_tokenize_mode(std::string_view name, TokenizeMode& mode);

namespace detail {

using EmitToken = void (*)(void* ctx, std::string_view token);

/// Outlined tokenization core: finds tokens in `line` with the selected
/// kernel, normalizes each into `scratch` and invokes `emit` with a view
/// into `scratch` (valid only during the call). One outlined call per
/// line; per-token cost is one indirect call.
void tokenize(std::string_view line, std::string& scratch, EmitToken emit,
              void* ctx);

/// The scalar reference loop, exposed separately so tests can compare any
/// kernel against the oracle regardless of the global mode.
void tokenize_scalar(std::string_view line, std::string& scratch,
                     EmitToken emit, void* ctx);

/// Kernel entry points for the differential fuzz battery. `tokenize_swar`
/// always exists; `tokenize_simd` falls back to SWAR when no 16-byte
/// kernel is compiled for this target (see resolved_kernel_name()).
void tokenize_swar(std::string_view line, std::string& scratch,
                   EmitToken emit, void* ctx);
void tokenize_simd(std::string_view line, std::string& scratch,
                   EmitToken emit, void* ctx);

}  // namespace detail

/// Streaming tokenizer used by the applications: invokes `fn` with each
/// normalized token as a view into `scratch`, valid only during the call.
/// Semantics are exactly the scalar oracle's, whatever kernel runs.
template <typename Fn>
void for_each_token(std::string_view line, std::string& scratch, Fn&& fn) {
  // The const_cast only strips constness for the void* hop; the trampoline
  // restores the callable's exact (possibly const) type before invoking.
  detail::tokenize(
      line, scratch,
      [](void* ctx, std::string_view token) {
        (*static_cast<std::remove_reference_t<Fn>*>(ctx))(token);
      },
      const_cast<void*>(
          static_cast<const void*>(std::addressof(fn))));
}

}  // namespace textmr::text
