#include "text/tokenize.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#define TEXTMR_TOKENIZE_SSE2 1
#elif defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#define TEXTMR_TOKENIZE_NEON 1
#endif

namespace textmr::text {
namespace detail {
namespace {

// The SWAR classifier and the movemask reduction index bytes by their
// position inside a little-endian 64-bit load; on a big-endian target the
// kernels would mis-map bit positions, so dispatch falls back to scalar.
constexpr bool kLittleEndian = std::endian::native == std::endian::little;

inline void append_lower(std::string& scratch, const char* p, std::size_t n) {
  const std::size_t base = scratch.size();
  scratch.resize(base + n);
  char* out = scratch.data() + base;
  // Token bytes are [A-Za-z0-9] by construction; OR 0x20 lowercases the
  // letters and is an identity on digits and lowercase letters.
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = static_cast<char>(p[k] | 0x20);
  }
}

// ---- classifiers ----------------------------------------------------------
// Each returns a bitmask with bit i set iff byte i of the block is a token
// byte ([A-Za-z0-9]); bits at and beyond the block length are zero.

/// 8-byte SWAR classifier; `n` <= 8, missing tail bytes read as NUL
/// (a delimiter, so their mask bits are naturally zero).
inline std::uint32_t classify8_swar(const char* p, std::size_t n) {
  std::uint64_t x = 0;
  std::memcpy(&x, p, n);
  constexpr std::uint64_t kLow7 = 0x7f7f7f7f7f7f7f7fULL;
  constexpr std::uint64_t kHigh = 0x8080808080808080ULL;
  constexpr std::uint64_t kOnes = 0x0101010101010101ULL;
  const std::uint64_t high = x & kHigh;
  // Per-byte range check on the low 7 bits: ge has bit7 set iff
  // byte >= lo (no carry: 127 + (128-lo) <= 255), le has bit7 set iff
  // byte <= hi (no borrow: minuend byte >= 128 > any 7-bit subtrahend).
  const auto in_range = [](std::uint64_t v7, unsigned lo, unsigned hi) {
    const std::uint64_t ge = (v7 + kOnes * (0x80 - lo)) & kHigh;
    const std::uint64_t le = ((kOnes * hi) | kHigh) - v7;
    return ge & le & kHigh;
  };
  // Letters on y = x | 0x20 (case fold); digits on x directly. Bytes with
  // the high bit set (multi-byte UTF-8) alias into the 7-bit ranges, so
  // they are masked back out.
  const std::uint64_t letters = in_range((x | (kOnes * 0x20)) & kLow7, 'a', 'z');
  const std::uint64_t digits = in_range(x & kLow7, '0', '9');
  const std::uint64_t flags = (letters | digits) & ~high;
  // Movemask: gather each byte's bit7 into one byte. The multiply places
  // indicator i at bit 56 + i; the terms occupy distinct bit positions,
  // so no carries disturb the top byte.
  return static_cast<std::uint32_t>(((flags >> 7) * 0x0102040810204080ULL) >>
                                    56);
}

#if defined(TEXTMR_TOKENIZE_SSE2)

/// Full 16-byte SSE2 classifier. Unsigned range checks via the
/// min_epu8(x - lo, span) == x - lo idiom; bytes >= 0x80 wrap far outside
/// both ranges, so no separate high-bit mask is needed.
inline std::uint32_t classify16_simd(const char* p) {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i lower = _mm_or_si128(v, _mm_set1_epi8(0x20));
  const __m128i la = _mm_sub_epi8(lower, _mm_set1_epi8('a'));
  const __m128i is_letter =
      _mm_cmpeq_epi8(_mm_min_epu8(la, _mm_set1_epi8(25)), la);
  const __m128i dg = _mm_sub_epi8(v, _mm_set1_epi8('0'));
  const __m128i is_digit =
      _mm_cmpeq_epi8(_mm_min_epu8(dg, _mm_set1_epi8(9)), dg);
  return static_cast<std::uint32_t>(
      _mm_movemask_epi8(_mm_or_si128(is_letter, is_digit)));
}

#elif defined(TEXTMR_TOKENIZE_NEON)

/// Full 16-byte NEON (AArch64) classifier; same unsigned-range shape as
/// the SSE2 kernel, movemask via per-lane powers of two + horizontal add.
inline std::uint32_t classify16_simd(const char* p) {
  const uint8x16_t v = vld1q_u8(reinterpret_cast<const std::uint8_t*>(p));
  const uint8x16_t lower = vorrq_u8(v, vdupq_n_u8(0x20));
  const uint8x16_t is_letter =
      vcleq_u8(vsubq_u8(lower, vdupq_n_u8('a')), vdupq_n_u8(25));
  const uint8x16_t is_digit =
      vcleq_u8(vsubq_u8(v, vdupq_n_u8('0')), vdupq_n_u8(9));
  const uint8x16_t tok = vorrq_u8(is_letter, is_digit);
  static const std::uint8_t kPowers[16] = {1, 2, 4, 8, 16, 32, 64, 128,
                                           1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t bits = vandq_u8(tok, vld1q_u8(kPowers));
  const std::uint32_t lo = vaddv_u8(vget_low_u8(bits));
  const std::uint32_t hi = vaddv_u8(vget_high_u8(bits));
  return lo | (hi << 8);
}

#endif

// ---- block drivers --------------------------------------------------------

/// Walks a block's token bitmask, carrying in-token state across block
/// boundaries so tokens straddling 8/16-byte edges come out whole. `mask`
/// must have zero bits at and beyond `block`.
struct RunScanner {
  std::string& scratch;
  EmitToken emit;
  void* ctx;
  bool in_token = false;

  void scan(const char* data, std::size_t block, std::uint32_t mask) {
    std::size_t p = 0;
    while (p < block) {
      if (!in_token) {
        const std::uint32_t m = mask >> p;
        if (m == 0) return;  // only delimiters remain in this block
        p += static_cast<std::size_t>(std::countr_zero(m));
        in_token = true;
      } else {
        // ~mask has every bit >= block set, so the scan always stops at
        // the block edge and the token continues into the next block.
        const std::uint32_t m = (~mask) >> p;
        const std::size_t run =
            static_cast<std::size_t>(std::countr_zero(m));
        append_lower(scratch, data + p, run);
        p += run;
        if (p < block) {
          emit(ctx, std::string_view(scratch));
          scratch.clear();
          in_token = false;
        }
      }
    }
  }

  void finish() {
    if (in_token) {
      emit(ctx, std::string_view(scratch));
      scratch.clear();
      in_token = false;
    }
  }
};

// ---- dispatch -------------------------------------------------------------

constexpr int kModeUnresolved = -1;
std::atomic<int> g_mode{kModeUnresolved};

TokenizeMode mode_from_env() {
  if (const char* env = std::getenv("TEXTMR_TOKENIZE")) {
    TokenizeMode mode;
    if (parse_tokenize_mode(env, mode)) return mode;
  }
  return TokenizeMode::kAuto;
}

int load_mode() {
  int mode = g_mode.load(std::memory_order_relaxed);
  if (mode == kModeUnresolved) {
    mode = static_cast<int>(mode_from_env());
    g_mode.store(mode, std::memory_order_relaxed);
  }
  return mode;
}

}  // namespace

void tokenize_scalar(std::string_view line, std::string& scratch,
                     EmitToken emit, void* ctx) {
  // The reference loop — byte-at-a-time, the semantics every kernel must
  // reproduce. Kept free of the block machinery above on purpose: the
  // fuzz battery compares the kernels against *this*.
  scratch.clear();
  for (std::size_t i = 0; i <= line.size(); ++i) {
    const char c = (i < line.size()) ? line[i] : ' ';
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      scratch.push_back(c);
    } else if (c >= 'A' && c <= 'Z') {
      scratch.push_back(static_cast<char>(c - 'A' + 'a'));
    } else {
      if (!scratch.empty()) {
        emit(ctx, std::string_view(scratch));
        scratch.clear();
      }
    }
  }
}

void tokenize_swar(std::string_view line, std::string& scratch,
                   EmitToken emit, void* ctx) {
  if (!kLittleEndian) return tokenize_scalar(line, scratch, emit, ctx);
  scratch.clear();
  RunScanner scanner{scratch, emit, ctx};
  const char* data = line.data();
  std::size_t n = line.size();
  while (n > 0) {
    const std::size_t block = n < 8 ? n : 8;
    scanner.scan(data, block, classify8_swar(data, block));
    data += block;
    n -= block;
  }
  scanner.finish();
}

void tokenize_simd(std::string_view line, std::string& scratch,
                   EmitToken emit, void* ctx) {
#if defined(TEXTMR_TOKENIZE_SSE2) || defined(TEXTMR_TOKENIZE_NEON)
  if (!kLittleEndian) return tokenize_scalar(line, scratch, emit, ctx);
  scratch.clear();
  RunScanner scanner{scratch, emit, ctx};
  const char* data = line.data();
  std::size_t n = line.size();
  while (n >= 16) {
    scanner.scan(data, 16, classify16_simd(data));
    data += 16;
    n -= 16;
  }
  while (n > 0) {
    const std::size_t block = n < 8 ? n : 8;
    scanner.scan(data, block, classify8_swar(data, block));
    data += block;
    n -= block;
  }
  scanner.finish();
#else
  tokenize_swar(line, scratch, emit, ctx);
#endif
}

void tokenize(std::string_view line, std::string& scratch, EmitToken emit,
              void* ctx) {
  switch (static_cast<TokenizeMode>(load_mode())) {
    case TokenizeMode::kScalar:
      return tokenize_scalar(line, scratch, emit, ctx);
    case TokenizeMode::kSwar:
      return tokenize_swar(line, scratch, emit, ctx);
    case TokenizeMode::kAuto:
    case TokenizeMode::kSimd:
      return tokenize_simd(line, scratch, emit, ctx);
  }
  tokenize_scalar(line, scratch, emit, ctx);
}

}  // namespace detail

void set_tokenize_mode(TokenizeMode mode) {
  detail::g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

TokenizeMode tokenize_mode() {
  return static_cast<TokenizeMode>(detail::load_mode());
}

const char* resolved_kernel_name() {
  if (!detail::kLittleEndian) return "scalar";
#if defined(TEXTMR_TOKENIZE_SSE2)
  return "simd-sse2";
#elif defined(TEXTMR_TOKENIZE_NEON)
  return "simd-neon";
#else
  return "swar";
#endif
}

bool parse_tokenize_mode(std::string_view name, TokenizeMode& mode) {
  if (name == "auto") {
    mode = TokenizeMode::kAuto;
  } else if (name == "scalar") {
    mode = TokenizeMode::kScalar;
  } else if (name == "swar") {
    mode = TokenizeMode::kSwar;
  } else if (name == "simd") {
    mode = TokenizeMode::kSimd;
  } else {
    return false;
  }
  return true;
}

}  // namespace textmr::text
