#include "sketch/space_saving.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace textmr::sketch {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  TEXTMR_CHECK(capacity >= 1, "SpaceSaving capacity must be >= 1");
  index_.reserve(capacity);
}

void SpaceSaving::offer(std::string_view key) {
  ++observed_;
  if (auto it = index_.find(key); it != index_.end()) {
    increment(it->second);
    return;
  }
  if (index_.size() < capacity_) {
    // Fresh key into a (possibly new) count-1 bucket at the front.
    if (buckets_.empty() || buckets_.front().count != 1) {
      buckets_.emplace_front(Bucket{1, {}});
    }
    auto bucket_it = buckets_.begin();
    bucket_it->counters.push_front(Counter{std::string(key), 0, bucket_it});
    index_.emplace(bucket_it->counters.front().key,
                   bucket_it->counters.begin());
    return;
  }
  // Replace the minimum-count key: newcomer inherits min count as error,
  // then gets the +1 for its own occurrence.
  auto min_bucket = buckets_.begin();
  auto victim = min_bucket->counters.begin();
  index_.erase(victim->key);
  victim->key.assign(key.data(), key.size());
  victim->error = min_bucket->count;
  index_.emplace(victim->key, victim);
  increment(victim);
}

void SpaceSaving::increment(std::list<Counter>::iterator counter_it) {
  auto bucket_it = counter_it->bucket;
  const std::uint64_t new_count = bucket_it->count + 1;
  auto next_bucket = std::next(bucket_it);
  if (next_bucket == buckets_.end() || next_bucket->count != new_count) {
    next_bucket = buckets_.insert(next_bucket, Bucket{new_count, {}});
  }
  // Splice the counter node across buckets; iterators (and the index_ map
  // entries pointing at them) stay valid.
  next_bucket->counters.splice(next_bucket->counters.begin(),
                               bucket_it->counters, counter_it);
  counter_it->bucket = next_bucket;
  if (bucket_it->counters.empty()) buckets_.erase(bucket_it);
}

std::vector<SpaceSaving::Entry> SpaceSaving::top(std::size_t top_k) const {
  std::vector<Entry> result;
  result.reserve(index_.size());
  for (auto bucket_it = buckets_.rbegin(); bucket_it != buckets_.rend();
       ++bucket_it) {
    for (const auto& counter : bucket_it->counters) {
      result.push_back(Entry{counter.key, bucket_it->count, counter.error});
      if (top_k != 0 && result.size() == top_k) return result;
    }
  }
  return result;
}

bool SpaceSaving::contains(std::string_view key) const {
  return index_.find(key) != index_.end();
}

void SpaceSaving::clear() {
  buckets_.clear();
  index_.clear();
  observed_ = 0;
}

}  // namespace textmr::sketch
