#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

namespace textmr::sketch {

/// LRU frequent-key predictor — the baseline of the paper's Fig. 7.
/// "LRU always adds each new tuple to the buffer, expelling the
/// least-recently-used key."
///
/// Usage as a predictor: each offered key is a hit (the tuple would be
/// combined in place) or a miss (the tuple displaces the LRU entry, whose
/// aggregate is emitted to the spill path).
class LruTracker {
 public:
  explicit LruTracker(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }

  /// Offers one key; returns true on hit (key was resident).
  bool offer(std::string_view key) {
    ++observed_;
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      order_.splice(order_.begin(), order_, it->second);
      return true;
    }
    if (index_.size() == capacity_) {
      ++evictions_;
      index_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(std::string(key));
    index_.emplace(order_.front(), order_.begin());
    return false;
  }

  std::uint64_t observed() const { return observed_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Fraction of offered tuples that were combined in place.
  double hit_rate() const {
    return observed_ == 0 ? 0.0
                          : static_cast<double>(hits_) /
                                static_cast<double>(observed_);
  }

 private:
  struct ShHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct ShEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  std::size_t capacity_;
  std::uint64_t observed_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<std::string> order_;  // MRU at front
  std::unordered_map<std::string_view, std::list<std::string>::iterator,
                     ShHash, ShEq>
      index_;
};

}  // namespace textmr::sketch
