#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace textmr::sketch {

/// Exact frequency counter — the "Ideal" predictor of the paper's Fig. 7.
/// Memory is proportional to the number of distinct keys, so this is a
/// measurement tool, not something the runtime could afford online.
class ExactCounter {
 public:
  void offer(std::string_view key) {
    ++observed_;
    auto it = counts_.find(key);
    if (it == counts_.end()) {
      counts_.emplace(std::string(key), 1);
    } else {
      ++it->second;
    }
  }

  std::uint64_t observed() const { return observed_; }
  std::size_t distinct() const { return counts_.size(); }

  std::uint64_t count(std::string_view key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Top-k keys by true frequency (ties broken by key for determinism).
  std::vector<std::pair<std::string, std::uint64_t>> top(std::size_t k) const {
    std::vector<std::pair<std::string, std::uint64_t>> all(counts_.begin(),
                                                           counts_.end());
    const std::size_t take = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + static_cast<long>(take),
                      all.end(), [](const auto& a, const auto& b) {
                        if (a.second != b.second) return a.second > b.second;
                        return a.first < b.first;
                      });
    all.resize(take);
    return all;
  }

 private:
  struct ShHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct ShEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };
  std::unordered_map<std::string, std::uint64_t, ShHash, ShEq> counts_;
  std::uint64_t observed_ = 0;
};

}  // namespace textmr::sketch
