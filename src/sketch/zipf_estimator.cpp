#include "sketch/zipf_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/harmonic.hpp"

namespace textmr::sketch {

ZipfFit fit_zipf(const std::vector<std::uint64_t>& descending_frequencies) {
  TEXTMR_CHECK(std::is_sorted(descending_frequencies.begin(),
                              descending_frequencies.end(),
                              std::greater<std::uint64_t>()),
               "frequencies must be sorted in descending order");
  // Collect (log rank, log frequency) points.
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(descending_frequencies.size());
  ys.reserve(descending_frequencies.size());
  for (std::size_t i = 0; i < descending_frequencies.size(); ++i) {
    if (descending_frequencies[i] == 0) break;  // sorted: rest are zero too
    xs.push_back(std::log(static_cast<double>(i + 1)));
    ys.push_back(std::log(static_cast<double>(descending_frequencies[i])));
  }

  ZipfFit fit;
  fit.points = xs.size();
  if (xs.size() < 2) return fit;

  const double n = static_cast<double>(xs.size());
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_xy = 0, sum_yy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum_x += xs[i];
    sum_y += ys[i];
    sum_xx += xs[i] * xs[i];
    sum_xy += xs[i] * ys[i];
    sum_yy += ys[i] * ys[i];
  }
  const double var_x = sum_xx - sum_x * sum_x / n;
  if (var_x <= 0) return fit;  // all points share one rank?! degenerate
  const double cov_xy = sum_xy - sum_x * sum_y / n;
  const double slope = cov_xy / var_x;
  fit.alpha = std::max(0.0, -slope);
  fit.log_c = (sum_y - slope * sum_x) / n;
  const double var_y = sum_yy - sum_y * sum_y / n;
  fit.r_squared = (var_y > 0) ? (cov_xy * cov_xy) / (var_x * var_y) : 1.0;
  return fit;
}

double sampling_fraction(std::uint64_t k, double alpha, std::uint64_t m,
                         std::uint64_t n, double floor_s) {
  TEXTMR_CHECK(k >= 1, "sampling_fraction needs k >= 1");
  TEXTMR_CHECK(n >= 1, "sampling_fraction needs n >= 1");
  if (m < 1) m = 1;
  // Expected records until the k-th ranked key appears once:
  //   1 / p_k = k^alpha * H_{m,alpha}
  const double expected_until_kth =
      std::pow(static_cast<double>(k), alpha) * generalized_harmonic(m, alpha);
  const double s = expected_until_kth / static_cast<double>(n);
  return std::clamp(s, floor_s, 1.0);
}

}  // namespace textmr::sketch
