#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace textmr::sketch {

/// Space-Saving top-k sketch (Metwally, Agrawal & El Abbadi, ICDT 2005) —
/// the profiling algorithm the paper uses to find frequent map() output
/// keys (§III-B).
///
/// The structure is the classic "stream summary": counters live in buckets
/// ordered by count; all counters in a bucket share the same count, so both
/// the increment and the min-replacement are O(1) amortized (plus one hash
/// lookup).
///
/// Semantics per the paper: when a new key arrives and the table is full,
/// the key with the lowest count is evicted and the newcomer inherits that
/// count + 1 ("slightly higher than the lowest frequency to avoid
/// thrashing"), with the inherited part tracked as `error`.
class SpaceSaving {
 public:
  struct Entry {
    std::string key;
    std::uint64_t count = 0;  // upper bound on the key's true frequency
    std::uint64_t error = 0;  // count inherited at insertion
  };

  explicit SpaceSaving(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }
  std::uint64_t observed() const { return observed_; }

  /// Process one key occurrence.
  void offer(std::string_view key);

  /// The current monitored set, ordered by decreasing count. If
  /// `top_k` > 0 only that many entries are returned.
  std::vector<Entry> top(std::size_t top_k = 0) const;

  /// True if `key` is currently monitored with count - error > 0 at a
  /// guaranteed rank <= k (conservative: uses the guaranteed-count
  /// ordering). Cheap helper for tests.
  bool contains(std::string_view key) const;

  void clear();

 private:
  struct Bucket;
  struct Counter {
    std::string key;
    std::uint64_t error = 0;
    std::list<Bucket>::iterator bucket;
  };
  struct Bucket {
    std::uint64_t count = 0;
    std::list<Counter> counters;
  };

  void increment(std::list<Counter>::iterator counter_it);

  std::size_t capacity_;
  std::uint64_t observed_ = 0;
  // Buckets in increasing count order; begin() is the minimum bucket.
  std::list<Bucket> buckets_;
  // Heterogeneous lookup: key bytes -> counter node.
  struct ShHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct ShEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };
  std::unordered_map<std::string, std::list<Counter>::iterator, ShHash, ShEq>
      index_;
};

}  // namespace textmr::sketch
