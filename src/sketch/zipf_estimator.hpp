#pragma once

#include <cstdint>
#include <vector>

namespace textmr::sketch {

/// Estimate of a Zipfian key distribution, fitted from observed
/// (rank, frequency) points (paper §III-C).
struct ZipfFit {
  double alpha = 0.0;      // fitted exponent
  double log_c = 0.0;      // fitted intercept (log C)
  double r_squared = 0.0;  // goodness of fit of the log-log regression
  std::size_t points = 0;  // number of (rank, frequency) points used
};

/// Fits `log f_i = -alpha * log i + log C` by ordinary least squares over
/// the frequencies of the keys seen in the pre-profiling step, sorted in
/// descending order. Frequencies of zero are skipped. Requires at least
/// two distinct positive frequencies; otherwise returns alpha = 0 with
/// points reflecting what was usable.
ZipfFit fit_zipf(const std::vector<std::uint64_t>& descending_frequencies);

/// The paper's sampling-fraction rule (§III-C):
///
///   n*s >= k^alpha * H_{m,alpha}
///
/// where n is the expected number of intermediate records, k the frequent
/// table capacity, and m the (estimated) number of distinct keys. Returns
/// s clamped to [floor_s, 1.0]. The floor guards against degenerate fits
/// (alpha ~ 0 on a tiny pre-profile) disabling profiling entirely.
double sampling_fraction(std::uint64_t k, double alpha, std::uint64_t m,
                         std::uint64_t n, double floor_s = 0.001);

}  // namespace textmr::sketch
