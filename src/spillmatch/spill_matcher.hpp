#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>

namespace textmr::spillmatch {

/// Timing of one completed spill: wall time the map thread took to produce
/// it (excluding buffer-full waits) and the support thread took to consume
/// it. Mirrors mr::SpillTiming but lives here so this module has no
/// dependency on the runtime.
struct Timing {
  std::uint64_t produce_ns = 0;
  std::uint64_t consume_ns = 0;
  std::uint64_t data_bytes = 0;
};

/// The paper's closed form (§IV, eq. (1)): given produce rate p and
/// consume rate c, the largest spill threshold x that keeps the *slower*
/// of the map/support threads wait-free is
///
///     x = max{ c/(p+c), 1/2 }.
///
/// Rates are measured on the same spill, so with wall times T_p and T_c
/// (p = bytes/T_p, c = bytes/T_c) this is
///
///     x = max{ T_p/(T_p+T_c), 1/2 }.
///
/// Derivation sketch (§IV-C): with buffer size M and recurrence
/// m_i = max{xM, min{(p/c)·m_{i-1}, M − m_{i-1}}}:
///   * p < c (map slower): the map thread never blocks iff the consumer's
///     backlog plus the fresh region fits, M ≥ (1 + p/c)·m, and with
///     m ≥ xM this forces x ≤ c/(p+c) (> 1/2 in this case);
///   * p > c (support slower): the support thread finds the next region
///     already at the threshold iff M − m ≥ xM, i.e. x ≤ 1/2.
inline double matched_threshold(std::uint64_t produce_ns,
                                std::uint64_t consume_ns) {
  if (produce_ns + consume_ns == 0) return 0.5;
  const double x = static_cast<double>(produce_ns) /
                   static_cast<double>(produce_ns + consume_ns);
  return std::max(x, 0.5);
}

/// Strategy supplying the spill threshold before the first spill and after
/// each completed one.
class SpillPolicy {
 public:
  virtual ~SpillPolicy() = default;
  virtual double initial_threshold() const = 0;
  virtual double next_threshold(const Timing& last) = 0;
  virtual const char* name() const = 0;
};

/// Hadoop's static default: io.sort.spill.percent, 0.8 unless configured.
class FixedSpillPolicy final : public SpillPolicy {
 public:
  explicit FixedSpillPolicy(double threshold = 0.8) : threshold_(threshold) {}
  double initial_threshold() const override { return threshold_; }
  double next_threshold(const Timing&) override { return threshold_; }
  const char* name() const override { return "fixed"; }

 private:
  double threshold_;
};

/// The spill-matcher: predicts the next spill's p and c from the last
/// spill's measured rates (the paper's hypothesis that adjacent spills
/// behave alike) and applies eq. (1). Clamped away from the extremes so
/// one pathological measurement cannot wedge the pipeline.
///
/// Observability: on a traced run (JobSpec::trace.enabled) every
/// next_threshold() decision is recorded by the support thread as a
/// "threshold_update" instant carrying the measured T_p/T_c and the
/// chosen x, and the applied threshold appears as the "spill_threshold"
/// counter track — extract it with obs::counter_series(trace,
/// "spill_threshold") to plot the matcher's trajectory.
class SpillMatcher final : public SpillPolicy {
 public:
  struct Options {
    double initial = 0.8;  // until the first measurement exists
    double min_threshold = 0.05;
    double max_threshold = 0.95;
  };

  SpillMatcher() = default;
  explicit SpillMatcher(Options options) : options_(options) {}

  double initial_threshold() const override { return options_.initial; }

  double next_threshold(const Timing& last) override {
    const double x = matched_threshold(last.produce_ns, last.consume_ns);
    return std::clamp(x, options_.min_threshold, options_.max_threshold);
  }

  const char* name() const override { return "spill-matcher"; }

 private:
  Options options_{};
};

using SpillPolicyFactory = std::function<std::unique_ptr<SpillPolicy>()>;

}  // namespace textmr::spillmatch
